//! Timing presets and the `TimingSpec` string grammar.
//!
//! The paper evaluates ChargeCache on exactly one device — DDR3-1600
//! 11-11-11 (Table 1) — but the mechanism applies to any DDR-derived
//! interface (Section 7.2), and its payoff shifts as the baseline gets
//! faster or slower. A [`TimingSpec`] selects the device: a JEDEC
//! speed-bin preset name plus optional per-parameter overrides, with a
//! string grammar mirroring the mechanism layer's `MechanismSpec`:
//!
//! ```text
//! spec     := preset | preset "(" params ")"
//! params   := param ("," param)*
//! param    := key "=" value
//! value    := int | float                # cycles, or nanoseconds for tck
//! ```
//!
//! Preset names and keys match `[A-Za-z_][A-Za-z0-9_.+-]*`; whitespace
//! around tokens is ignored. [`TimingSpec`] round-trips:
//! `spec.to_string().parse()` reproduces the spec exactly.
//!
//! # Example
//!
//! ```
//! use dram::{TimingParams, TimingSpec};
//!
//! // The default spec is the paper's Table 1 device.
//! let spec = TimingSpec::default();
//! assert_eq!(spec.to_string(), "ddr3-1600");
//! assert_eq!(spec.resolve().unwrap(), TimingParams::ddr3_1600());
//!
//! // Presets resolve to their JEDEC CL-tRCD-tRP triplet; overrides
//! // patch individual fields after the preset is applied.
//! let spec: TimingSpec = "ddr3-2133(trcd=13)".parse().unwrap();
//! let t = spec.resolve().unwrap();
//! assert_eq!((t.tcl, t.trcd, t.trp), (14, 13, 14));
//! assert_eq!(spec.to_string(), "ddr3-2133(trcd=13)");
//!
//! // Incoherent parameter sets are rejected, not simulated.
//! assert!("ddr3-1600(tras=50)".parse::<TimingSpec>().unwrap().resolve().is_err());
//! assert!("ddr9-9999".parse::<TimingSpec>().unwrap().resolve().is_err());
//! ```

use std::fmt;
use std::str::FromStr;

use crate::timing::{SpeedBin, TimingParams};

/// One override value of a [`TimingSpec`]: a cycle count or (for `tck`)
/// a nanosecond figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingValue {
    /// An unsigned integer (cycle-count fields).
    Int(u32),
    /// A float (always displayed with a decimal point; the `tck` field).
    Float(f64),
}

impl TimingValue {
    /// The value as a float (ints widen losslessly).
    pub fn as_f64(self) -> f64 {
        match self {
            TimingValue::Int(i) => f64::from(i),
            TimingValue::Float(x) => x,
        }
    }
}

impl fmt::Display for TimingValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingValue::Int(i) => write!(f, "{i}"),
            TimingValue::Float(x) => {
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

impl FromStr for TimingValue {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty parameter value".into());
        }
        // Integers first, so "13" round-trips as Int; anything with a
        // decimal point or exponent becomes Float.
        if let Ok(i) = s.parse::<u32>() {
            return Ok(TimingValue::Int(i));
        }
        if s.starts_with(|c: char| c.is_ascii_digit() || matches!(c, '-' | '+' | '.')) {
            if let Ok(x) = s.parse::<f64>() {
                if !x.is_finite() {
                    return Err(format!("non-finite value {s:?}"));
                }
                return Ok(TimingValue::Float(x));
            }
        }
        Err(format!("unparsable timing value {s:?}"))
    }
}

/// True for tokens matching `[A-Za-z_][A-Za-z0-9_.+-]*`.
fn is_token(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '+' | '-'))
}

/// A DRAM timing selection: a preset name plus typed overrides.
///
/// Overrides keep insertion order, so [`fmt::Display`] output is
/// deterministic; only *explicitly set* overrides are stored — the
/// preset supplies every other field at resolution time. Parse with
/// [`FromStr`] (`"ddr3-1866(trcd=12,tfaw=26)".parse()`).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSpec {
    preset: String,
    params: Vec<(String, TimingValue)>,
}

/// Override keys accepted by [`TimingSpec::resolve`]: every
/// [`TimingParams`] cycle field plus `tck` (the clock period in ns).
pub const TIMING_KEYS: &[&str] = &[
    "tck", "trcd", "tcl", "tcwl", "trp", "tras", "trc", "tbl", "tccd", "trtp", "twr", "twtr",
    "trrd", "tfaw", "trfc", "trefi", "trtrs", "tccd_l", "tccd_s", "trrd_l", "trrd_s", "trfcpb",
];

impl TimingSpec {
    /// A spec with no overrides.
    ///
    /// # Panics
    ///
    /// Panics if `preset` is not a valid token
    /// (`[A-Za-z_][A-Za-z0-9_.+-]*`). Unknown (but well-formed) preset
    /// names are accepted here and rejected by [`TimingSpec::resolve`].
    pub fn new(preset: impl Into<String>) -> Self {
        let preset = preset.into();
        assert!(is_token(&preset), "invalid timing preset name {preset:?}");
        Self {
            preset,
            params: Vec::new(),
        }
    }

    /// A spec for a named speed bin (no overrides).
    pub fn for_bin(bin: SpeedBin) -> Self {
        Self::new(bin.name())
    }

    /// Builder-style override setter.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not a valid token.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: TimingValue) -> Self {
        self.set(key, value);
        self
    }

    /// Sets (or replaces) one override.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not a valid token.
    pub fn set(&mut self, key: impl Into<String>, value: TimingValue) {
        let key = key.into();
        assert!(is_token(&key), "invalid timing key {key:?}");
        match self.params.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.params.push((key, value)),
        }
    }

    /// The preset name (speed-bin lookup key).
    pub fn preset(&self) -> &str {
        &self.preset
    }

    /// The explicitly set overrides, in insertion order.
    pub fn params(&self) -> &[(String, TimingValue)] {
        &self.params
    }

    /// One override, if explicitly set.
    pub fn get(&self, key: &str) -> Option<TimingValue> {
        self.params.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// True when this spec resolves to the same parameter set as the
    /// bare default (`ddr3-1600`) — the configuration every pre-preset
    /// result was produced under.
    ///
    /// The comparison is structural, not textual: an explicitly-written
    /// `ddr3-1600()` or a redundant override (`ddr3-1600(trcd=11)`)
    /// behaves exactly like the bare default, while any spec that fails
    /// to resolve is by definition not the default.
    pub fn is_default(&self) -> bool {
        if self.preset == SpeedBin::Ddr3_1600.name() && self.params.is_empty() {
            return true;
        }
        self.resolve().is_ok_and(|t| t == TimingParams::ddr3_1600())
    }

    /// Resolves the spec into a concrete, validated parameter set: the
    /// preset's [`TimingParams`] with each override applied, then checked
    /// by [`TimingParams::validate`].
    ///
    /// # Errors
    ///
    /// Returns a message if the preset name is unknown, an override key
    /// is not one of [`TIMING_KEYS`], a cycle field is given a
    /// non-integer value, or the resulting parameter set is incoherent
    /// (e.g. `tras` exceeding `trc`, a zero `tck`).
    pub fn resolve(&self) -> Result<TimingParams, String> {
        let Some(bin) = SpeedBin::from_name(&self.preset) else {
            let known: Vec<&str> = SpeedBin::ALL.iter().map(|b| b.name()).collect();
            return Err(format!(
                "unknown timing preset {:?} (known: {})",
                self.preset,
                known.join(", ")
            ));
        };
        let mut t = bin.timing();
        // Group-spacing fields inherit their base value (`tccd_l`/`tccd_s`
        // from `tccd`, `trrd_l`/`trrd_s` from `trrd`, `trfcpb` from
        // `trfc`) unless explicitly overridden, so a plain `tccd=6`
        // override keeps its historical meaning of "all column spacing".
        let explicit = |k: &str| self.params.iter().any(|(key, _)| key == k);
        for (key, value) in &self.params {
            let cycles = |v: TimingValue| -> Result<u32, String> {
                match v {
                    TimingValue::Int(i) => Ok(i),
                    TimingValue::Float(x) => {
                        Err(format!("{key} must be an integer cycle count, got {x}"))
                    }
                }
            };
            match key.as_str() {
                "tck" => {
                    let ns = value.as_f64();
                    if !(ns.is_finite() && ns > 0.0) {
                        return Err(format!("tck must be a positive period in ns, got {value}"));
                    }
                    t.tck_ns = ns;
                }
                "trcd" => t.trcd = cycles(*value)?,
                "tcl" => t.tcl = cycles(*value)?,
                "tcwl" => t.tcwl = cycles(*value)?,
                "trp" => t.trp = cycles(*value)?,
                "tras" => t.tras = cycles(*value)?,
                "trc" => t.trc = cycles(*value)?,
                "tbl" => t.tbl = cycles(*value)?,
                "tccd" => {
                    t.tccd = cycles(*value)?;
                    if !explicit("tccd_l") {
                        t.tccd_l = t.tccd;
                    }
                    if !explicit("tccd_s") {
                        t.tccd_s = t.tccd;
                    }
                }
                "trtp" => t.trtp = cycles(*value)?,
                "twr" => t.twr = cycles(*value)?,
                "twtr" => t.twtr = cycles(*value)?,
                "trrd" => {
                    t.trrd = cycles(*value)?;
                    if !explicit("trrd_l") {
                        t.trrd_l = t.trrd;
                    }
                    if !explicit("trrd_s") {
                        t.trrd_s = t.trrd;
                    }
                }
                "tfaw" => t.tfaw = cycles(*value)?,
                "trfc" => {
                    t.trfc = cycles(*value)?;
                    if !explicit("trfcpb") {
                        t.trfcpb = t.trfc;
                    }
                }
                "trefi" => t.trefi = cycles(*value)?,
                "trtrs" => t.trtrs = cycles(*value)?,
                "tccd_l" => t.tccd_l = cycles(*value)?,
                "tccd_s" => t.tccd_s = cycles(*value)?,
                "trrd_l" => t.trrd_l = cycles(*value)?,
                "trrd_s" => t.trrd_s = cycles(*value)?,
                "trfcpb" => t.trfcpb = cycles(*value)?,
                other => {
                    return Err(format!(
                        "unknown timing parameter {other:?} (known: {})",
                        TIMING_KEYS.join(", ")
                    ))
                }
            }
        }
        t.validate()
            .map_err(|e| format!("incoherent timing spec {self}: {e}"))?;
        Ok(t)
    }

    /// `(name, description, params)` for every preset, in speed order
    /// (drives `cc-sim --list-timings`).
    pub fn presets() -> Vec<(&'static str, &'static str, TimingParams)> {
        SpeedBin::ALL
            .iter()
            .map(|b| (b.name(), b.describe(), b.timing()))
            .collect()
    }
}

impl Default for TimingSpec {
    /// The paper's Table 1 device: bare `ddr3-1600`.
    fn default() -> Self {
        Self::for_bin(SpeedBin::Ddr3_1600)
    }
}

impl fmt::Display for TimingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.preset)?;
        if self.params.is_empty() {
            return Ok(());
        }
        f.write_str("(")?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{k}={v}")?;
        }
        f.write_str(")")
    }
}

impl FromStr for TimingSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let (preset, params_src) = match s.find('(') {
            None => (s, None),
            Some(open) => {
                let Some(body) = s[open + 1..].strip_suffix(')') else {
                    return Err(format!("timing spec {s:?} is missing its closing ')'"));
                };
                (&s[..open], Some(body))
            }
        };
        let preset = preset.trim();
        if !is_token(preset) {
            return Err(format!("invalid timing preset name {preset:?}"));
        }
        let mut spec = TimingSpec::new(preset);
        if let Some(body) = params_src {
            let body = body.trim();
            if !body.is_empty() {
                for part in body.split(',') {
                    let Some((k, v)) = part.split_once('=') else {
                        return Err(format!("timing parameter {part:?} is not key=value"));
                    };
                    let k = k.trim();
                    if !is_token(k) {
                        return Err(format!("invalid timing key {k:?}"));
                    }
                    if spec.get(k).is_some() {
                        return Err(format!("duplicate timing parameter {k:?}"));
                    }
                    spec.set(k, v.parse::<TimingValue>()?);
                }
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_paper_device() {
        let spec = TimingSpec::default();
        assert!(spec.is_default());
        assert_eq!(spec.resolve().unwrap(), TimingParams::ddr3_1600());
    }

    #[test]
    fn every_preset_resolves_and_round_trips() {
        for (name, _describe, params) in TimingSpec::presets() {
            let spec: TimingSpec = name.parse().unwrap();
            assert_eq!(spec.to_string(), name);
            assert_eq!(spec.resolve().unwrap(), params);
        }
    }

    #[test]
    fn overrides_patch_individual_fields() {
        let spec: TimingSpec = "ddr3-1600(trcd=13,tck=1.5)".parse().unwrap();
        let t = spec.resolve().unwrap();
        assert_eq!(t.trcd, 13);
        assert_eq!(t.tck_ns, 1.5);
        // Unpatched fields keep the preset values.
        assert_eq!(t.tcl, 11);
        assert_eq!(spec.to_string(), "ddr3-1600(trcd=13,tck=1.5)");
    }

    #[test]
    fn resolve_rejects_bad_specs() {
        for (src, needle) in [
            ("ddr9-9999", "unknown timing preset"),
            ("ddr3-1600(bogus=1)", "unknown timing parameter"),
            ("ddr3-1600(trcd=1.5)", "integer cycle count"),
            ("ddr3-1600(tck=0)", "positive"),
            ("ddr3-1600(tras=50)", "incoherent"), // tras > trc
            ("ddr3-1600(trcd=30)", "incoherent"), // trcd > tras
            ("ddr3-1600(trcd=0)", "incoherent"),
        ] {
            let err = src.parse::<TimingSpec>().unwrap().resolve().unwrap_err();
            assert!(err.contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "ddr3-1600(",
            "ddr3-1600)x",
            "ddr3-1600(trcd)",
            "ddr3-1600(trcd=13,trcd=14)",
            "ddr3-1600(=1)",
            "3ddr",
            "ddr3-1600(k=)",
            "ddr3-1600(k=1)junk",
            "ddr3-1600(trcd=abc)",
        ] {
            assert!(bad.parse::<TimingSpec>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_tolerates_whitespace_and_normalizes() {
        let spec: TimingSpec = "  ddr3-1866 ( trcd = 12 , tfaw = 26 )  ".parse().unwrap();
        assert_eq!(spec.to_string(), "ddr3-1866(trcd=12,tfaw=26)");
        let bare: TimingSpec = "ddr3-1333()".parse().unwrap();
        assert_eq!(bare.to_string(), "ddr3-1333");
        assert!(!bare.is_default());
    }

    #[test]
    fn float_values_keep_their_type_through_display() {
        assert_eq!(TimingValue::Float(2.0).to_string(), "2.0");
        assert_eq!(
            "2.0".parse::<TimingValue>().unwrap(),
            TimingValue::Float(2.0)
        );
        assert_eq!("2".parse::<TimingValue>().unwrap(), TimingValue::Int(2));
    }
}
