//! Per-channel state: ranks plus the shared command/data buses.

use crate::command::Command;
use crate::config::DramConfig;
use crate::error::IssueError;
use crate::rank::Rank;
use crate::timing::{ActTimings, TimingParams};
use crate::{BusCycle, IssueOutcome};

/// One memory channel: independent command/address/data buses shared by
/// the channel's ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    ranks: Vec<Rank>,
    /// Cycle until which the data bus is occupied (exclusive).
    data_bus_busy_until: BusCycle,
    /// Rank that last drove the data bus (for tRTRS).
    last_data_rank: Option<u8>,
    /// Cycle of the last command on the command bus.
    last_cmd_at: Option<BusCycle>,
}

impl Channel {
    /// Creates a channel for the given configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        Self {
            ranks: (0..cfg.org.ranks).map(|_| Rank::new(cfg)).collect(),
            data_bus_busy_until: 0,
            last_data_rank: None,
            last_cmd_at: None,
        }
    }

    /// Immutable access to a rank.
    pub fn rank(&self, rank: u8) -> &Rank {
        &self.ranks[rank as usize]
    }

    /// Mutable access to a rank.
    pub fn rank_mut(&mut self, rank: u8) -> &mut Rank {
        &mut self.ranks[rank as usize]
    }

    /// Earliest cycle (≥ `now`) at which `cmd` could legally issue on this
    /// channel.
    ///
    /// # Errors
    ///
    /// Returns an [`IssueError`] if the command is structurally illegal in
    /// the current state (see [`IssueError`] for the cases).
    pub fn earliest_issue(
        &self,
        cmd: &Command,
        now: BusCycle,
        t: &TimingParams,
    ) -> Result<BusCycle, IssueError> {
        // One command per cycle on the command bus.
        let cmd_bus = match self.last_cmd_at {
            Some(at) if at >= now => at + 1,
            _ => now,
        };
        let earliest = match *cmd {
            Command::Act { loc, row } => {
                let rank = &self.ranks[loc.rank as usize];
                if let Some(open) = rank.bank(loc.bank).open_row() {
                    return Err(IssueError::RowAlreadyOpen {
                        loc,
                        open_row: open,
                    });
                }
                let _ = row;
                rank.earliest_act(loc.bank, now, t)
            }
            Command::Pre { loc } => {
                let rank = &self.ranks[loc.rank as usize];
                if rank.bank(loc.bank).open_row().is_none() {
                    return Err(IssueError::NoOpenRow { loc });
                }
                rank.bank(loc.bank).earliest_pre(now)
            }
            Command::PreAll { rank } => {
                let r = &self.ranks[rank.rank as usize];
                (0..r.num_banks() as u8)
                    .filter(|&b| r.bank(b).open_row().is_some())
                    .map(|b| r.bank(b).earliest_pre(now))
                    .max()
                    .unwrap_or(now)
            }
            Command::Rd { loc, .. } => {
                let rank = &self.ranks[loc.rank as usize];
                if rank.bank(loc.bank).open_row().is_none() {
                    return Err(IssueError::NoOpenRow { loc });
                }
                let mut at = rank.earliest_rd(loc.bank, now);
                at = at.max(self.data_bus_ready(loc.rank, at, t, t.tcl));
                at
            }
            Command::Wr { loc, .. } => {
                let rank = &self.ranks[loc.rank as usize];
                if rank.bank(loc.bank).open_row().is_none() {
                    return Err(IssueError::NoOpenRow { loc });
                }
                let mut at = rank.earliest_wr(loc.bank, now);
                at = at.max(self.data_bus_ready(loc.rank, at, t, t.tcwl));
                at
            }
            Command::Ref { rank } => {
                let r = &self.ranks[rank.rank as usize];
                if r.per_bank_refresh() {
                    // REFpb needs only its target bank precharged.
                    let target = r.refresh_target().unwrap_or(0);
                    if !r.bank(target).is_precharged() {
                        return Err(IssueError::BanksNotPrecharged {
                            channel: rank.channel,
                            rank: rank.rank,
                        });
                    }
                } else if !r.all_banks_precharged() {
                    return Err(IssueError::BanksNotPrecharged {
                        channel: rank.channel,
                        rank: rank.rank,
                    });
                }
                r.earliest_ref(now)
            }
        };
        Ok(earliest.max(cmd_bus))
    }

    /// Applies `cmd` at `now`. The caller must have verified legality.
    pub fn issue(
        &mut self,
        cmd: &Command,
        now: BusCycle,
        t: &TimingParams,
        act: ActTimings,
    ) -> IssueOutcome {
        self.last_cmd_at = Some(now);
        let mut out = IssueOutcome::default();
        match *cmd {
            Command::Act { loc, row } => {
                self.ranks[loc.rank as usize].issue_act(loc.bank, now, act, t, row);
            }
            Command::Pre { loc } => {
                let row = self.ranks[loc.rank as usize]
                    .bank_mut(loc.bank)
                    .issue_pre(now, t);
                out.closed_rows.push((loc, row, now));
            }
            Command::PreAll { rank } => {
                let r = &mut self.ranks[rank.rank as usize];
                for b in 0..r.num_banks() as u8 {
                    if r.bank(b).open_row().is_some() {
                        let row = r.bank_mut(b).issue_pre(now, t);
                        out.closed_rows.push((
                            crate::BankLoc {
                                channel: rank.channel,
                                rank: rank.rank,
                                bank: b,
                            },
                            row,
                            now,
                        ));
                    }
                }
            }
            Command::Rd { loc, auto_pre, .. } => {
                if let Some((row, at)) =
                    self.ranks[loc.rank as usize].issue_rd(loc.bank, now, t, auto_pre)
                {
                    out.closed_rows.push((loc, row, at));
                }
                let burst_end = now + BusCycle::from(t.tcl + t.tbl);
                self.data_bus_busy_until = burst_end;
                self.last_data_rank = Some(loc.rank);
                out.data_at = Some(burst_end);
            }
            Command::Wr { loc, auto_pre, .. } => {
                if let Some((row, at)) =
                    self.ranks[loc.rank as usize].issue_wr(loc.bank, now, t, auto_pre)
                {
                    out.closed_rows.push((loc, row, at));
                }
                let burst_end = now + BusCycle::from(t.tcwl + t.tbl);
                self.data_bus_busy_until = burst_end;
                self.last_data_rank = Some(loc.rank);
                out.write_done_at = Some(burst_end);
            }
            Command::Ref { rank } => {
                let (first_row, count, bank) = self.ranks[rank.rank as usize].issue_ref(now, t);
                out.refreshed = Some((first_row, count));
                out.refreshed_bank = bank;
            }
        }
        out
    }

    /// Serializes the channel's mutable state (checkpoint support).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        use fasthash::codec::*;
        put_usize(out, self.ranks.len());
        for r in &self.ranks {
            r.save_state(out);
        }
        put_u64(out, self.data_bus_busy_until);
        match self.last_data_rank {
            None => put_u8(out, 0),
            Some(r) => {
                put_u8(out, 1);
                put_u8(out, r);
            }
        }
        match self.last_cmd_at {
            None => put_u8(out, 0),
            Some(at) => {
                put_u8(out, 1);
                put_u64(out, at);
            }
        }
    }

    /// Restores state saved by [`Self::save_state`] into a channel built
    /// with the same configuration.
    pub fn load_state(&mut self, input: &mut &[u8]) -> Result<(), String> {
        use fasthash::codec::*;
        let n = take_len(input, 8, "channel ranks")?;
        if n != self.ranks.len() {
            return Err(format!(
                "rank count mismatch: checkpoint has {n}, channel has {}",
                self.ranks.len()
            ));
        }
        for r in &mut self.ranks {
            r.load_state(input)?;
        }
        self.data_bus_busy_until = take_u64(input, "data bus busy")?;
        self.last_data_rank = match take_u8(input, "last data rank tag")? {
            0 => None,
            1 => Some(take_u8(input, "last data rank")?),
            t => return Err(format!("invalid last data rank tag {t}")),
        };
        self.last_cmd_at = match take_u8(input, "last cmd tag")? {
            0 => None,
            1 => Some(take_u64(input, "last cmd at")?),
            t => return Err(format!("invalid last cmd tag {t}")),
        };
        Ok(())
    }

    /// Earliest issue cycle such that a burst with the given CAS latency
    /// does not collide with the previous burst on the data bus.
    fn data_bus_ready(&self, rank: u8, at: BusCycle, t: &TimingParams, cas: u32) -> BusCycle {
        let mut free = self.data_bus_busy_until;
        if let Some(last) = self.last_data_rank {
            if last != rank {
                free += BusCycle::from(t.trtrs);
            }
        }
        // Burst begins at issue + cas; it must begin at or after `free`.
        if at + BusCycle::from(cas) >= free {
            at
        } else {
            free - BusCycle::from(cas)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankLoc;
    use crate::config::DramConfig;

    fn setup() -> (Channel, TimingParams) {
        let cfg = DramConfig::ddr3_1600_paper();
        (Channel::new(&cfg), cfg.timing)
    }

    fn loc(bank: u8) -> BankLoc {
        BankLoc {
            channel: 0,
            rank: 0,
            bank,
        }
    }

    #[test]
    fn command_bus_serializes_same_cycle() {
        let (mut ch, t) = setup();
        ch.issue(&Command::act(loc(0), 1), 0, &t, t.act_timings());
        ch.issue(&Command::act(loc(1), 1), 5, &t, t.act_timings());
        // Long after every timing constraint has drained, two precharges
        // still cannot share a command-bus cycle.
        ch.issue(&Command::pre(loc(0)), 100, &t, t.act_timings());
        let e = ch.earliest_issue(&Command::pre(loc(1)), 100, &t).unwrap();
        assert_eq!(e, 101);
    }

    #[test]
    fn preall_reports_every_open_row() {
        let (mut ch, t) = setup();
        ch.issue(&Command::act(loc(0), 10), 0, &t, t.act_timings());
        ch.issue(&Command::act(loc(1), 20), 5, &t, t.act_timings());
        let at = ch
            .earliest_issue(
                &Command::PreAll {
                    rank: loc(0).rank_loc(),
                },
                0,
                &t,
            )
            .unwrap();
        let out = ch.issue(
            &Command::PreAll {
                rank: loc(0).rank_loc(),
            },
            at,
            &t,
            t.act_timings(),
        );
        assert_eq!(out.closed_rows.len(), 2);
        assert!(out
            .closed_rows
            .iter()
            .any(|&(l, r, _)| l == loc(0) && r == 10));
        assert!(out
            .closed_rows
            .iter()
            .any(|&(l, r, _)| l == loc(1) && r == 20));
    }

    #[test]
    fn read_returns_data_after_cl_plus_burst() {
        let (mut ch, t) = setup();
        ch.issue(&Command::act(loc(0), 1), 0, &t, t.act_timings());
        let rd_at = ch.earliest_issue(&Command::rd(loc(0), 0), 0, &t).unwrap();
        let out = ch.issue(&Command::rd(loc(0), 0), rd_at, &t, t.act_timings());
        assert_eq!(out.data_at, Some(rd_at + u64::from(t.tcl + t.tbl)));
    }

    #[test]
    fn refresh_blocked_until_banks_precharged() {
        let (mut ch, t) = setup();
        ch.issue(&Command::act(loc(0), 1), 0, &t, t.act_timings());
        let rf = Command::Ref {
            rank: loc(0).rank_loc(),
        };
        assert!(matches!(
            ch.earliest_issue(&rf, 10, &t),
            Err(IssueError::BanksNotPrecharged { .. })
        ));
    }
}
