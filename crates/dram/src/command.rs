//! DRAM commands and addressing coordinates.

/// A DRAM row index within a bank.
pub type RowId = u32;

/// Coordinates of one bank in the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankLoc {
    /// Channel index.
    pub channel: u8,
    /// Rank index within the channel.
    pub rank: u8,
    /// Bank index within the rank.
    pub bank: u8,
}

impl BankLoc {
    /// The rank containing this bank.
    pub fn rank_loc(&self) -> RankLoc {
        RankLoc {
            channel: self.channel,
            rank: self.rank,
        }
    }

    /// Flat rank-major index of this bank within its channel
    /// (`rank * banks_per_rank + bank`). Controllers use it to key
    /// per-bank state vectors; inverse of [`BankLoc::from_flat_index`].
    pub fn flat_index(&self, banks_per_rank: u8) -> usize {
        usize::from(self.rank) * usize::from(banks_per_rank) + usize::from(self.bank)
    }

    /// Reconstructs the bank at flat rank-major `index` of `channel`.
    /// Inverse of [`BankLoc::flat_index`].
    pub fn from_flat_index(channel: u8, index: usize, banks_per_rank: u8) -> Self {
        Self {
            channel,
            rank: (index / usize::from(banks_per_rank)) as u8,
            bank: (index % usize::from(banks_per_rank)) as u8,
        }
    }
}

/// Coordinates of one rank in the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RankLoc {
    /// Channel index.
    pub channel: u8,
    /// Rank index within the channel.
    pub rank: u8,
}

/// The DDR3 command set used by the model.
///
/// `Rd`/`Wr` carry an `auto_pre` flag implementing the RDA/WRA variants:
/// the bank precharges itself as soon as `tRAS` and `tRTP`/`tWR` allow,
/// which the closed-row policy uses to avoid a separate PRE slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Activate (open) `row` in a bank.
    Act {
        /// Target bank.
        loc: BankLoc,
        /// Row to open.
        row: RowId,
    },
    /// Precharge (close) the open row of a bank.
    Pre {
        /// Target bank.
        loc: BankLoc,
    },
    /// Precharge every bank in a rank.
    PreAll {
        /// Target rank.
        rank: RankLoc,
    },
    /// Read a column burst from the open row.
    Rd {
        /// Target bank.
        loc: BankLoc,
        /// Column (cache-line granularity).
        col: u32,
        /// Auto-precharge after the read (RDA).
        auto_pre: bool,
    },
    /// Write a column burst to the open row.
    Wr {
        /// Target bank.
        loc: BankLoc,
        /// Column (cache-line granularity).
        col: u32,
        /// Auto-precharge after the write (WRA).
        auto_pre: bool,
    },
    /// Auto-refresh the next row group of a rank.
    Ref {
        /// Target rank.
        rank: RankLoc,
    },
}

/// Discriminant of [`Command`], used for statistics and energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Row activation.
    Act,
    /// Single-bank precharge.
    Pre,
    /// All-bank precharge.
    PreAll,
    /// Column read.
    Rd,
    /// Column read with auto-precharge.
    RdA,
    /// Column write.
    Wr,
    /// Column write with auto-precharge.
    WrA,
    /// Auto-refresh.
    Ref,
}

impl Command {
    /// Convenience constructor for `ACT`.
    pub fn act(loc: BankLoc, row: RowId) -> Self {
        Command::Act { loc, row }
    }

    /// Convenience constructor for `PRE`.
    pub fn pre(loc: BankLoc) -> Self {
        Command::Pre { loc }
    }

    /// Convenience constructor for `RD` (no auto-precharge).
    pub fn rd(loc: BankLoc, col: u32) -> Self {
        Command::Rd {
            loc,
            col,
            auto_pre: false,
        }
    }

    /// Convenience constructor for `RDA`.
    pub fn rda(loc: BankLoc, col: u32) -> Self {
        Command::Rd {
            loc,
            col,
            auto_pre: true,
        }
    }

    /// Convenience constructor for `WR` (no auto-precharge).
    pub fn wr(loc: BankLoc, col: u32) -> Self {
        Command::Wr {
            loc,
            col,
            auto_pre: false,
        }
    }

    /// Convenience constructor for `WRA`.
    pub fn wra(loc: BankLoc, col: u32) -> Self {
        Command::Wr {
            loc,
            col,
            auto_pre: true,
        }
    }

    /// The command's kind discriminant.
    pub fn kind(&self) -> CommandKind {
        match self {
            Command::Act { .. } => CommandKind::Act,
            Command::Pre { .. } => CommandKind::Pre,
            Command::PreAll { .. } => CommandKind::PreAll,
            Command::Rd {
                auto_pre: false, ..
            } => CommandKind::Rd,
            Command::Rd { auto_pre: true, .. } => CommandKind::RdA,
            Command::Wr {
                auto_pre: false, ..
            } => CommandKind::Wr,
            Command::Wr { auto_pre: true, .. } => CommandKind::WrA,
            Command::Ref { .. } => CommandKind::Ref,
        }
    }

    /// The channel this command targets.
    pub fn channel(&self) -> u8 {
        match self {
            Command::Act { loc, .. }
            | Command::Pre { loc }
            | Command::Rd { loc, .. }
            | Command::Wr { loc, .. } => loc.channel,
            Command::PreAll { rank } | Command::Ref { rank } => rank.channel,
        }
    }

    /// The rank this command targets.
    pub fn rank(&self) -> u8 {
        match self {
            Command::Act { loc, .. }
            | Command::Pre { loc }
            | Command::Rd { loc, .. }
            | Command::Wr { loc, .. } => loc.rank,
            Command::PreAll { rank } | Command::Ref { rank } => rank.rank,
        }
    }

    /// The bank this command targets, if it is bank-scoped.
    pub fn bank(&self) -> Option<u8> {
        match self {
            Command::Act { loc, .. }
            | Command::Pre { loc }
            | Command::Rd { loc, .. }
            | Command::Wr { loc, .. } => Some(loc.bank),
            Command::PreAll { .. } | Command::Ref { .. } => None,
        }
    }
}

impl CommandKind {
    /// True for `Rd`/`RdA`.
    pub fn is_read(&self) -> bool {
        matches!(self, CommandKind::Rd | CommandKind::RdA)
    }

    /// True for `Wr`/`WrA`.
    pub fn is_write(&self) -> bool {
        matches!(self, CommandKind::Wr | CommandKind::WrA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOC: BankLoc = BankLoc {
        channel: 1,
        rank: 0,
        bank: 5,
    };

    #[test]
    fn kinds_match_constructors() {
        assert_eq!(Command::act(LOC, 3).kind(), CommandKind::Act);
        assert_eq!(Command::pre(LOC).kind(), CommandKind::Pre);
        assert_eq!(Command::rd(LOC, 0).kind(), CommandKind::Rd);
        assert_eq!(Command::rda(LOC, 0).kind(), CommandKind::RdA);
        assert_eq!(Command::wr(LOC, 0).kind(), CommandKind::Wr);
        assert_eq!(Command::wra(LOC, 0).kind(), CommandKind::WrA);
    }

    #[test]
    fn scoping_accessors() {
        let cmd = Command::act(LOC, 3);
        assert_eq!(cmd.channel(), 1);
        assert_eq!(cmd.rank(), 0);
        assert_eq!(cmd.bank(), Some(5));

        let rf = Command::Ref {
            rank: LOC.rank_loc(),
        };
        assert_eq!(rf.channel(), 1);
        assert_eq!(rf.bank(), None);
    }

    #[test]
    fn read_write_predicates() {
        assert!(CommandKind::Rd.is_read());
        assert!(CommandKind::RdA.is_read());
        assert!(!CommandKind::Rd.is_write());
        assert!(CommandKind::WrA.is_write());
        assert!(!CommandKind::Ref.is_read());
    }

    #[test]
    fn flat_index_roundtrips_rank_major() {
        let banks = 8;
        let mut seen = vec![false; 2 * usize::from(banks)];
        for rank in 0..2u8 {
            for bank in 0..banks {
                let loc = BankLoc {
                    channel: 1,
                    rank,
                    bank,
                };
                let idx = loc.flat_index(banks);
                assert!(!seen[idx], "flat index {idx} collides");
                seen[idx] = true;
                assert_eq!(BankLoc::from_flat_index(1, idx, banks), loc);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
