//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The mapper slices the physical address (above the cache-line offset)
//! into channel, rank, bank, row and column fields. Two standard layouts
//! are provided, plus an optional XOR bank permutation (as in
//! permutation-based page interleaving) that spreads row-conflict traffic
//! across banks.

use crate::command::{BankLoc, RowId};
use crate::config::Organization;

/// Fully decoded DRAM coordinates of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramAddress {
    /// Bank coordinates.
    pub loc: BankLoc,
    /// Row within the bank.
    pub row: RowId,
    /// Column at cache-line granularity.
    pub col: u32,
}

/// Field order of the sliced address, from least- to most-significant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingScheme {
    /// `row : rank : bank : column : channel` (LSB → channel).
    ///
    /// Consecutive lines interleave across channels, then fill a row —
    /// the row-locality-friendly baseline layout used for the paper's
    /// experiments.
    RoRaBaCoCh,
    /// `row : column : rank : bank : channel` (LSB → channel).
    ///
    /// Consecutive lines interleave across channels and then banks —
    /// maximizes bank-level parallelism for streaming.
    RoCoRaBaCh,
}

/// Address mapper for a fixed organization and scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMapper {
    org: Organization,
    scheme: MappingScheme,
    /// XOR the bank index with the low row bits (permutation-based
    /// interleaving) to spread row conflicts across banks.
    xor_bank: bool,
}

impl AddressMapper {
    /// Creates a mapper.
    ///
    /// # Panics
    ///
    /// Panics if the organization fails [`Organization::validate`].
    pub fn new(org: Organization, scheme: MappingScheme, xor_bank: bool) -> Self {
        org.validate().expect("invalid organization");
        Self {
            org,
            scheme,
            xor_bank,
        }
    }

    /// The paper-baseline mapper for an organization.
    pub fn paper_default(org: Organization) -> Self {
        Self::new(org, MappingScheme::RoRaBaCoCh, false)
    }

    /// The organization this mapper addresses.
    pub fn organization(&self) -> &Organization {
        &self.org
    }

    /// Total addressable bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.org.capacity_bytes()
    }

    /// Decodes a physical byte address into DRAM coordinates.
    ///
    /// The address is taken modulo the device capacity, so any `u64` is
    /// valid input (synthetic trace generators rely on this).
    pub fn decode(&self, phys_addr: u64) -> DramAddress {
        let line = (phys_addr % self.capacity_bytes()) / u64::from(self.org.line_bytes);
        let (ch_bits, ra_bits, ba_bits, ro_bits, co_bits) = self.field_bits();
        let mut rest = line;
        let mut take = |bits: u32| -> u64 {
            let v = rest & ((1 << bits) - 1);
            rest >>= bits;
            v
        };
        let (channel, rank, bank, row, col) = match self.scheme {
            MappingScheme::RoRaBaCoCh => {
                let ch = take(ch_bits);
                let co = take(co_bits);
                let ba = take(ba_bits);
                let ra = take(ra_bits);
                let ro = take(ro_bits);
                (ch, ra, ba, ro, co)
            }
            MappingScheme::RoCoRaBaCh => {
                let ch = take(ch_bits);
                let ba = take(ba_bits);
                let ra = take(ra_bits);
                let co = take(co_bits);
                let ro = take(ro_bits);
                (ch, ra, ba, ro, co)
            }
        };
        let bank = if self.xor_bank {
            bank ^ (row & (u64::from(self.org.banks) - 1))
        } else {
            bank
        };
        DramAddress {
            loc: BankLoc {
                channel: channel as u8,
                rank: rank as u8,
                bank: bank as u8,
            },
            row: row as RowId,
            col: col as u32,
        }
    }

    /// Encodes DRAM coordinates back into a physical byte address
    /// (line-aligned). Inverse of [`Self::decode`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for the organization.
    pub fn encode(&self, addr: DramAddress) -> u64 {
        assert!(u32::from(addr.loc.channel) < u32::from(self.org.channels));
        assert!(u32::from(addr.loc.rank) < u32::from(self.org.ranks));
        assert!(u32::from(addr.loc.bank) < u32::from(self.org.banks));
        assert!(addr.row < self.org.rows);
        assert!(addr.col < self.org.columns);
        let (ch_bits, ra_bits, ba_bits, ro_bits, co_bits) = self.field_bits();
        let bank = if self.xor_bank {
            u64::from(addr.loc.bank) ^ (u64::from(addr.row) & (u64::from(self.org.banks) - 1))
        } else {
            u64::from(addr.loc.bank)
        };
        let mut line = 0u64;
        let mut shift = 0u32;
        let mut put = |v: u64, bits: u32| {
            line |= v << shift;
            shift += bits;
        };
        match self.scheme {
            MappingScheme::RoRaBaCoCh => {
                put(u64::from(addr.loc.channel), ch_bits);
                put(u64::from(addr.col), co_bits);
                put(bank, ba_bits);
                put(u64::from(addr.loc.rank), ra_bits);
                put(u64::from(addr.row), ro_bits);
            }
            MappingScheme::RoCoRaBaCh => {
                put(u64::from(addr.loc.channel), ch_bits);
                put(bank, ba_bits);
                put(u64::from(addr.loc.rank), ra_bits);
                put(u64::from(addr.col), co_bits);
                put(u64::from(addr.row), ro_bits);
            }
        }
        line * u64::from(self.org.line_bytes)
    }

    fn field_bits(&self) -> (u32, u32, u32, u32, u32) {
        (
            u32::from(self.org.channels).trailing_zeros(),
            u32::from(self.org.ranks).trailing_zeros(),
            u32::from(self.org.banks).trailing_zeros(),
            self.org.rows.trailing_zeros(),
            self.org.columns.trailing_zeros(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> Organization {
        Organization::paper(2)
    }

    #[test]
    fn consecutive_lines_interleave_channels() {
        let m = AddressMapper::paper_default(org());
        let a = m.decode(0);
        let b = m.decode(64);
        assert_ne!(a.loc.channel, b.loc.channel);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn lines_within_row_share_bank_and_row() {
        let m = AddressMapper::paper_default(org());
        // Same channel: step by 2 lines (2 channels).
        let a = m.decode(0);
        let b = m.decode(128);
        assert_eq!(a.loc, b.loc);
        assert_eq!(a.row, b.row);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn roundtrip_is_bijective_on_samples() {
        for scheme in [MappingScheme::RoRaBaCoCh, MappingScheme::RoCoRaBaCh] {
            for xor in [false, true] {
                let m = AddressMapper::new(org(), scheme, xor);
                for i in 0..4096u64 {
                    let phys = i * 64 * 7919 % m.capacity_bytes();
                    let line_aligned = phys & !63;
                    let d = m.decode(line_aligned);
                    assert_eq!(m.encode(d), line_aligned, "scheme {scheme:?} xor {xor}");
                }
            }
        }
    }

    #[test]
    fn decode_wraps_modulo_capacity() {
        let m = AddressMapper::paper_default(org());
        let cap = m.capacity_bytes();
        assert_eq!(m.decode(64), m.decode(cap + 64));
    }

    #[test]
    fn bank_interleaved_scheme_spreads_consecutive_lines() {
        let m = AddressMapper::new(org(), MappingScheme::RoCoRaBaCh, false);
        // Two consecutive same-channel lines land in different banks.
        let a = m.decode(0);
        let b = m.decode(128);
        assert_ne!(a.loc.bank, b.loc.bank);
    }

    #[test]
    fn xor_permutation_changes_bank_not_row() {
        let plain = AddressMapper::new(org(), MappingScheme::RoRaBaCoCh, false);
        let xored = AddressMapper::new(org(), MappingScheme::RoRaBaCoCh, true);
        // Pick an address whose row has low bits set.
        let phys = plain.encode(DramAddress {
            loc: BankLoc {
                channel: 0,
                rank: 0,
                bank: 2,
            },
            row: 5,
            col: 7,
        });
        let a = plain.decode(phys);
        let b = xored.decode(phys);
        assert_eq!(a.row, b.row);
        assert_eq!(a.col, b.col);
        assert_eq!(b.loc.bank, a.loc.bank ^ (5 & 7));
    }
}
