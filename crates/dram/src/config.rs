//! DRAM system configuration: organization plus timing.

use crate::family::RefreshGranularity;
use crate::timing::TimingParams;

/// Physical organization of the memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Organization {
    /// Number of independent channels.
    pub channels: u8,
    /// Ranks per channel.
    pub ranks: u8,
    /// Banks per rank.
    pub banks: u8,
    /// Bank groups per rank (1 = ungrouped, DDR3-style). Banks are split
    /// evenly across groups; same-group commands pay the long spacing
    /// (`tCCD_L`/`tRRD_L`), cross-group commands the short one.
    pub bank_groups: u8,
    /// Rows per bank.
    pub rows: u32,
    /// Columns per row at cache-line granularity.
    pub columns: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
}

impl Organization {
    /// The paper's Table 1 organization: 1–2 channels, 1 rank/channel,
    /// 8 banks/rank, 64K rows/bank, 8 KB row buffer, 64 B lines
    /// (128 lines per row).
    pub fn paper(channels: u8) -> Self {
        Self {
            channels,
            ranks: 1,
            banks: 8,
            bank_groups: 1,
            rows: 65_536,
            columns: 128,
            line_bytes: 64,
        }
    }

    /// Banks per bank group.
    pub fn banks_per_group(&self) -> u8 {
        self.banks / self.bank_groups.max(1)
    }

    /// Row-buffer size in bytes.
    pub fn row_bytes(&self) -> u64 {
        u64::from(self.columns) * u64::from(self.line_bytes)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.row_bytes()
            * u64::from(self.rows)
            * u64::from(self.banks)
            * u64::from(self.ranks)
            * u64::from(self.channels)
    }

    /// Validates that all dimensions are non-zero powers of two (required
    /// by the bit-sliced address mapper).
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending dimension.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("channels", u64::from(self.channels)),
            ("ranks", u64::from(self.ranks)),
            ("banks", u64::from(self.banks)),
            ("bank_groups", u64::from(self.bank_groups)),
            ("rows", u64::from(self.rows)),
            ("columns", u64::from(self.columns)),
            ("line_bytes", u64::from(self.line_bytes)),
        ] {
            if v == 0 {
                return Err(format!("{name} must be non-zero"));
            }
            if !v.is_power_of_two() {
                return Err(format!("{name} ({v}) must be a power of two"));
            }
        }
        if !self.banks.is_multiple_of(self.bank_groups) {
            return Err(format!(
                "banks ({}) must be a multiple of bank_groups ({})",
                self.banks, self.bank_groups
            ));
        }
        Ok(())
    }
}

/// Complete DRAM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Physical organization.
    pub org: Organization,
    /// Timing parameter set.
    pub timing: TimingParams,
    /// Retention window in milliseconds (refresh period for every cell).
    pub retention_ms: f64,
    /// Refresh command scope: all-bank `REF` (DDR3/DDR4) or per-bank
    /// `REFpb` (LPDDR4-style). Per-bank refresh locks only the target
    /// bank out, for `tRFCpb` instead of `tRFC`.
    pub refresh: RefreshGranularity,
}

impl DramConfig {
    /// The paper's evaluated configuration with a single channel
    /// (single-core experiments): DDR3-1600, 1 rank, 8 banks, 64K rows.
    pub fn ddr3_1600_paper() -> Self {
        Self {
            org: Organization::paper(1),
            timing: TimingParams::ddr3_1600(),
            retention_ms: 64.0,
            refresh: RefreshGranularity::AllBank,
        }
    }

    /// The paper's two-channel configuration (eight-core experiments).
    pub fn ddr3_1600_paper_2ch() -> Self {
        Self {
            org: Organization::paper(2),
            timing: TimingParams::ddr3_1600(),
            retention_ms: 64.0,
            refresh: RefreshGranularity::AllBank,
        }
    }

    /// The configuration a device family resolves to: the family's
    /// organization and refresh scope, with its structural timing
    /// patched onto the family's default speed bin.
    pub fn for_family(family: &crate::family::FamilyParams) -> Self {
        Self {
            org: family.organization(),
            timing: family.apply_to(family.default_bin.timing()),
            retention_ms: family.retention_ms,
            refresh: family.refresh,
        }
    }

    /// A 3D-stacked (HBM/HMC-like) organization: many narrow channels,
    /// more banks, small rows (paper Section 7.2 — ChargeCache applies
    /// unchanged because the interface still uses explicit ACT/PRE; the
    /// controller simply lives in the logic layer).
    pub fn stacked_like() -> Self {
        Self {
            org: Organization {
                channels: 8,
                ranks: 1,
                banks: 16,
                bank_groups: 1,
                rows: 16_384,
                columns: 32,
                line_bytes: 64,
            },
            timing: TimingParams::ddr3_1600(),
            retention_ms: 32.0,
            refresh: RefreshGranularity::AllBank,
        }
    }

    /// Number of refresh commands needed to cover every row once.
    pub fn refresh_bins(&self) -> u32 {
        self.timing.refs_per_window(self.retention_ms) as u32
    }

    /// Rows refreshed by a single REF command (per bank).
    pub fn rows_per_ref(&self) -> u32 {
        let bins = self.refresh_bins().max(1);
        self.org.rows.div_ceil(bins)
    }

    /// Validates organization and timing together.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.org.validate()?;
        self.timing.validate()?;
        if self.retention_ms <= 0.0 {
            return Err("retention window must be positive".into());
        }
        if self.refresh_bins() == 0 {
            return Err("retention window shorter than one tREFI".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1600_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        DramConfig::ddr3_1600_paper().validate().unwrap();
        DramConfig::ddr3_1600_paper_2ch().validate().unwrap();
    }

    #[test]
    fn paper_row_buffer_is_8kb() {
        let cfg = DramConfig::ddr3_1600_paper();
        assert_eq!(cfg.org.row_bytes(), 8192);
    }

    #[test]
    fn paper_capacity() {
        // 8 KB × 64K rows × 8 banks = 4 GiB per channel.
        let cfg = DramConfig::ddr3_1600_paper();
        assert_eq!(cfg.org.capacity_bytes(), 4 << 30);
    }

    #[test]
    fn refresh_covers_all_rows() {
        let cfg = DramConfig::ddr3_1600_paper();
        assert_eq!(cfg.refresh_bins(), 8192);
        assert_eq!(cfg.rows_per_ref(), 8);
        assert_eq!(cfg.rows_per_ref() * cfg.refresh_bins(), cfg.org.rows);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut cfg = DramConfig::ddr3_1600_paper();
        cfg.org.banks = 6;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn groups_must_divide_banks() {
        let mut cfg = DramConfig::ddr3_1600_paper();
        cfg.org.banks = 8;
        cfg.org.bank_groups = 16;
        assert!(cfg.validate().is_err());
        cfg.org.bank_groups = 4;
        cfg.validate().unwrap();
        assert_eq!(cfg.org.banks_per_group(), 2);
    }

    #[test]
    fn family_configs_are_valid() {
        for (_, _, fam) in crate::family::list_families() {
            let cfg = DramConfig::for_family(&fam);
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name));
            assert_eq!(cfg.refresh, fam.refresh);
        }
    }

    #[test]
    fn ddr3_family_config_matches_paper_config() {
        let fam = crate::family::resolve(&crate::family::FamilySpec::default()).unwrap();
        assert_eq!(DramConfig::for_family(&fam), DramConfig::ddr3_1600_paper());
    }
}
