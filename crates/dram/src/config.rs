//! DRAM system configuration: organization plus timing.

use crate::timing::TimingParams;

/// Physical organization of the memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Organization {
    /// Number of independent channels.
    pub channels: u8,
    /// Ranks per channel.
    pub ranks: u8,
    /// Banks per rank.
    pub banks: u8,
    /// Rows per bank.
    pub rows: u32,
    /// Columns per row at cache-line granularity.
    pub columns: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
}

impl Organization {
    /// The paper's Table 1 organization: 1–2 channels, 1 rank/channel,
    /// 8 banks/rank, 64K rows/bank, 8 KB row buffer, 64 B lines
    /// (128 lines per row).
    pub fn paper(channels: u8) -> Self {
        Self {
            channels,
            ranks: 1,
            banks: 8,
            rows: 65_536,
            columns: 128,
            line_bytes: 64,
        }
    }

    /// Row-buffer size in bytes.
    pub fn row_bytes(&self) -> u64 {
        u64::from(self.columns) * u64::from(self.line_bytes)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.row_bytes()
            * u64::from(self.rows)
            * u64::from(self.banks)
            * u64::from(self.ranks)
            * u64::from(self.channels)
    }

    /// Validates that all dimensions are non-zero powers of two (required
    /// by the bit-sliced address mapper).
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending dimension.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("channels", u64::from(self.channels)),
            ("ranks", u64::from(self.ranks)),
            ("banks", u64::from(self.banks)),
            ("rows", u64::from(self.rows)),
            ("columns", u64::from(self.columns)),
            ("line_bytes", u64::from(self.line_bytes)),
        ] {
            if v == 0 {
                return Err(format!("{name} must be non-zero"));
            }
            if !v.is_power_of_two() {
                return Err(format!("{name} ({v}) must be a power of two"));
            }
        }
        Ok(())
    }
}

/// Complete DRAM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Physical organization.
    pub org: Organization,
    /// Timing parameter set.
    pub timing: TimingParams,
    /// Retention window in milliseconds (refresh period for every cell).
    pub retention_ms: f64,
}

impl DramConfig {
    /// The paper's evaluated configuration with a single channel
    /// (single-core experiments): DDR3-1600, 1 rank, 8 banks, 64K rows.
    pub fn ddr3_1600_paper() -> Self {
        Self {
            org: Organization::paper(1),
            timing: TimingParams::ddr3_1600(),
            retention_ms: 64.0,
        }
    }

    /// The paper's two-channel configuration (eight-core experiments).
    pub fn ddr3_1600_paper_2ch() -> Self {
        Self {
            org: Organization::paper(2),
            timing: TimingParams::ddr3_1600(),
            retention_ms: 64.0,
        }
    }

    /// A 3D-stacked (HBM/HMC-like) organization: many narrow channels,
    /// more banks, small rows (paper Section 7.2 — ChargeCache applies
    /// unchanged because the interface still uses explicit ACT/PRE; the
    /// controller simply lives in the logic layer).
    pub fn stacked_like() -> Self {
        Self {
            org: Organization {
                channels: 8,
                ranks: 1,
                banks: 16,
                rows: 16_384,
                columns: 32,
                line_bytes: 64,
            },
            timing: TimingParams::ddr3_1600(),
            retention_ms: 32.0,
        }
    }

    /// Number of refresh commands needed to cover every row once.
    pub fn refresh_bins(&self) -> u32 {
        self.timing.refs_per_window(self.retention_ms) as u32
    }

    /// Rows refreshed by a single REF command (per bank).
    pub fn rows_per_ref(&self) -> u32 {
        let bins = self.refresh_bins().max(1);
        self.org.rows.div_ceil(bins)
    }

    /// Validates organization and timing together.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.org.validate()?;
        self.timing.validate()?;
        if self.retention_ms <= 0.0 {
            return Err("retention window must be positive".into());
        }
        if self.refresh_bins() == 0 {
            return Err("retention window shorter than one tREFI".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1600_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        DramConfig::ddr3_1600_paper().validate().unwrap();
        DramConfig::ddr3_1600_paper_2ch().validate().unwrap();
    }

    #[test]
    fn paper_row_buffer_is_8kb() {
        let cfg = DramConfig::ddr3_1600_paper();
        assert_eq!(cfg.org.row_bytes(), 8192);
    }

    #[test]
    fn paper_capacity() {
        // 8 KB × 64K rows × 8 banks = 4 GiB per channel.
        let cfg = DramConfig::ddr3_1600_paper();
        assert_eq!(cfg.org.capacity_bytes(), 4 << 30);
    }

    #[test]
    fn refresh_covers_all_rows() {
        let cfg = DramConfig::ddr3_1600_paper();
        assert_eq!(cfg.refresh_bins(), 8192);
        assert_eq!(cfg.rows_per_ref(), 8);
        assert_eq!(cfg.rows_per_ref() * cfg.refresh_bins(), cfg.org.rows);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut cfg = DramConfig::ddr3_1600_paper();
        cfg.org.banks = 6;
        assert!(cfg.validate().is_err());
    }
}
