//! Cycle-accurate DRAM device model.
//!
//! This crate is the reproduction's substitute for the DRAM half of
//! Ramulator: a command-level, cycle-accurate model of a DRAM memory
//! system — channels, ranks, banks, rows — that *enforces* the JEDEC
//! timing constraints rather than merely simulating averages. The
//! paper's device is DDR3-1600, but the checker is device-family aware:
//! the [`family`] module describes DDR4-, LPDDR4x- and HBM2-style
//! targets declaratively (bank groups, per-bank refresh,
//! pseudo-channels), and the rank/bank state machines enforce whichever
//! structure the configured family selects.
//!
//! The model is a timing checker in the Ramulator style: every bank, rank
//! and channel keeps "earliest next issue" registers per command kind;
//! [`DramDevice::earliest_issue`] reports when a command could legally
//! issue and [`DramDevice::issue`] applies a command's timing side effects.
//! The memory controller (crate `memctrl`) decides *what* to issue; this
//! crate guarantees it can never violate DDR3 timing.
//!
//! ChargeCache integration happens through exactly one seam:
//! [`timing::ActTimings`] — the per-activation `tRCD`/`tRAS` pair passed to
//! [`DramDevice::issue`] with every `ACT`. Baseline activations pass the
//! specification values; a ChargeCache hit passes the reduced pair. Nothing
//! else in the DRAM model changes, mirroring the paper's claim that the
//! mechanism needs no DRAM modifications.
//!
//! # Example
//!
//! ```
//! use dram::{Command, DramConfig, DramDevice, BankLoc};
//!
//! let cfg = DramConfig::ddr3_1600_paper();
//! let mut dev = DramDevice::new(cfg.clone());
//! let loc = BankLoc { channel: 0, rank: 0, bank: 0 };
//!
//! // Activate row 42, then read column 3 as soon as tRCD allows.
//! let act = Command::act(loc, 42);
//! assert_eq!(dev.earliest_issue(&act, 0), Ok(0));
//! dev.issue(&act, 0, cfg.timing.act_timings());
//!
//! let rd = Command::rd(loc, 3);
//! let t = dev.earliest_issue(&rd, 0).unwrap();
//! assert_eq!(t, u64::from(cfg.timing.trcd));
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod bank;
pub mod channel;
pub mod command;
pub mod config;
pub mod error;
pub mod family;
pub mod rank;
pub mod refresh;
pub mod spec;
pub mod stats;
pub mod timing;

pub use address::{AddressMapper, DramAddress, MappingScheme};
pub use bank::{Bank, BankState};
pub use channel::Channel;
pub use command::{BankLoc, Command, CommandKind, RankLoc, RowId};
pub use config::{DramConfig, Organization};
pub use error::IssueError;
pub use family::{
    FamilyError, FamilyParams, FamilyRegistry, FamilySpec, FamilyValue, RefreshGranularity,
    FAMILY_KEYS,
};
pub use rank::Rank;
pub use spec::{TimingSpec, TimingValue, TIMING_KEYS};
pub use stats::DeviceStats;
pub use timing::{ActTimings, SpeedBin, TimingParams};

/// Absolute time in DRAM bus cycles (tCK units).
pub type BusCycle = u64;

/// Outcome of successfully issuing a command.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IssueOutcome {
    /// For reads: cycle at which the last data beat arrives.
    pub data_at: Option<BusCycle>,
    /// For writes: cycle at which the write burst completes on the bus.
    pub write_done_at: Option<BusCycle>,
    /// Rows closed by this command (explicit or auto precharge), with the
    /// cycle at which each precharge *begins* — the instant the row's cells
    /// start leaking again, which is what ChargeCache timestamps.
    pub closed_rows: Vec<(BankLoc, RowId, BusCycle)>,
    /// For `REF` commands: the row range (first row, count) replenished,
    /// per the rotating refresh schedule. Covers *every bank* of the
    /// refreshed rank under all-bank refresh, or only
    /// [`Self::refreshed_bank`] under per-bank refresh. Charge-aware
    /// mechanisms treat these rows as highly charged
    /// (`LatencyMechanism::on_refresh_row` in `crates/core`).
    pub refreshed: Option<(RowId, u32)>,
    /// The single bank a per-bank `REFpb` covered; `None` for all-bank
    /// `REF` (and for non-refresh commands).
    pub refreshed_bank: Option<u8>,
}

/// A timestamped command, recorded for energy accounting and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Issue cycle.
    pub at: BusCycle,
    /// Command kind.
    pub kind: CommandKind,
    /// Channel the command was issued on.
    pub channel: u8,
    /// Rank within the channel.
    pub rank: u8,
}

/// The full DRAM device: all channels of the memory system.
///
/// See the crate-level documentation for the usage model.
#[derive(Debug, Clone)]
pub struct DramDevice {
    cfg: DramConfig,
    channels: Vec<Channel>,
    stats: DeviceStats,
    log: Option<Vec<CommandRecord>>,
}

impl DramDevice {
    /// Creates a device for the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.org.channels).map(|_| Channel::new(&cfg)).collect();
        Self {
            cfg,
            channels,
            stats: DeviceStats::default(),
            log: None,
        }
    }

    /// Enables command logging (for energy accounting).
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Takes the accumulated command log, leaving logging enabled.
    pub fn take_log(&mut self) -> Vec<CommandRecord> {
        match &mut self.log {
            Some(l) => std::mem::take(l),
            None => Vec::new(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Aggregate command statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// The open row in a bank, if any.
    pub fn open_row(&self, loc: BankLoc) -> Option<RowId> {
        self.channels[loc.channel as usize]
            .rank(loc.rank)
            .bank(loc.bank)
            .open_row()
    }

    /// True if every bank in the rank is precharged (required for REF).
    pub fn all_banks_precharged(&self, rank: RankLoc) -> bool {
        self.channels[rank.channel as usize]
            .rank(rank.rank)
            .all_banks_precharged()
    }

    /// Earliest cycle (≥ `now`) at which `cmd` could legally issue, or an
    /// error if the command is illegal in the current bank state (e.g.
    /// reading from a precharged bank).
    pub fn earliest_issue(&self, cmd: &Command, now: BusCycle) -> Result<BusCycle, IssueError> {
        let ch = &self.channels[cmd.channel() as usize];
        ch.earliest_issue(cmd, now, &self.cfg.timing)
    }

    /// True if `cmd` can issue exactly at `now`.
    pub fn can_issue(&self, cmd: &Command, now: BusCycle) -> bool {
        matches!(self.earliest_issue(cmd, now), Ok(t) if t == now)
    }

    /// Issues `cmd` at cycle `now`, applying all timing side effects.
    ///
    /// `act` supplies the `tRCD`/`tRAS` pair for `ACT` commands (ignored
    /// for all other kinds); pass [`TimingParams::act_timings`] for
    /// specification timing or a reduced pair for a ChargeCache hit.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the command cannot legally issue at
    /// `now`; call [`Self::can_issue`] first. This is a simulator-
    /// integrity check: a controller that issues illegal commands is a
    /// bug, not a runtime condition. Release builds trust the controller
    /// and skip the re-verification — it would double the per-command
    /// timing-check cost on the simulator's hottest path.
    pub fn issue(&mut self, cmd: &Command, now: BusCycle, act: ActTimings) -> IssueOutcome {
        #[cfg(debug_assertions)]
        match self.earliest_issue(cmd, now) {
            Ok(t) if t <= now => {}
            Ok(t) => panic!("command {cmd:?} issued at {now}, legal only at {t}"),
            Err(e) => panic!("illegal command {cmd:?} at {now}: {e}"),
        }
        self.stats.record(cmd.kind());
        if let Some(log) = &mut self.log {
            log.push(CommandRecord {
                at: now,
                kind: cmd.kind(),
                channel: cmd.channel(),
                rank: cmd.rank(),
            });
        }
        let timing = self.cfg.timing.clone();
        self.channels[cmd.channel() as usize].issue(cmd, now, &timing, act)
    }

    /// Age (in bus cycles) since the row was last refreshed, per the rank's
    /// rotating auto-refresh schedule (per-bank schedules under `REFpb`).
    /// Used by the NUAT mechanism.
    pub fn refresh_age(&self, loc: BankLoc, row: RowId, now: BusCycle) -> BusCycle {
        self.channels[loc.channel as usize]
            .rank(loc.rank)
            .refresh_age(loc.bank, row, now)
    }

    /// Earliest cycle at which the rank's next refresh becomes due.
    pub fn refresh_due(&self, rank: RankLoc) -> BusCycle {
        self.channels[rank.channel as usize]
            .rank(rank.rank)
            .refresh_due()
    }

    /// The bank the rank's next `REFpb` will cover, or `None` when the
    /// device uses all-bank refresh.
    pub fn refresh_target(&self, rank: RankLoc) -> Option<u8> {
        self.channels[rank.channel as usize]
            .rank(rank.rank)
            .refresh_target()
    }

    /// True when the rank only needs its refresh-target bank precharged
    /// before a refresh (per-bank mode); all-bank refresh requires
    /// [`Self::all_banks_precharged`].
    pub fn refresh_ready(&self, rank: RankLoc) -> bool {
        let r = self.channels[rank.channel as usize].rank(rank.rank);
        match r.refresh_target() {
            Some(bank) => r.bank(bank).is_precharged(),
            None => r.all_banks_precharged(),
        }
    }

    /// Serializes the device's complete mutable state — bank/rank/channel
    /// timing registers, refresh calendars, statistics and the command
    /// log — for checkpoint support.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        use fasthash::codec::*;
        put_usize(out, self.channels.len());
        for ch in &self.channels {
            ch.save_state(out);
        }
        for v in [
            self.stats.acts,
            self.stats.pres,
            self.stats.pre_alls,
            self.stats.reads,
            self.stats.writes,
            self.stats.refs,
        ] {
            put_u64(out, v);
        }
        match &self.log {
            None => put_u8(out, 0),
            Some(log) => {
                put_u8(out, 1);
                put_usize(out, log.len());
                for rec in log {
                    put_u64(out, rec.at);
                    put_u8(out, command_kind_tag(rec.kind));
                    put_u8(out, rec.channel);
                    put_u8(out, rec.rank);
                }
            }
        }
    }

    /// Restores state saved by [`Self::save_state`] into a device built
    /// with the same configuration.
    pub fn load_state(&mut self, input: &mut &[u8]) -> Result<(), String> {
        use fasthash::codec::*;
        let n = take_len(input, 8, "device channels")?;
        if n != self.channels.len() {
            return Err(format!(
                "channel count mismatch: checkpoint has {n}, device has {}",
                self.channels.len()
            ));
        }
        for ch in &mut self.channels {
            ch.load_state(input)?;
        }
        self.stats = DeviceStats {
            acts: take_u64(input, "acts")?,
            pres: take_u64(input, "pres")?,
            pre_alls: take_u64(input, "pre_alls")?,
            reads: take_u64(input, "reads")?,
            writes: take_u64(input, "writes")?,
            refs: take_u64(input, "refs")?,
        };
        self.log = match take_u8(input, "log tag")? {
            0 => None,
            1 => {
                let len = take_len(input, 11, "command log")?;
                let mut log = Vec::with_capacity(len);
                for _ in 0..len {
                    let at = take_u64(input, "log cycle")?;
                    let kind = command_kind_from_tag(take_u8(input, "log kind")?)?;
                    let channel = take_u8(input, "log channel")?;
                    let rank = take_u8(input, "log rank")?;
                    log.push(CommandRecord {
                        at,
                        kind,
                        channel,
                        rank,
                    });
                }
                Some(log)
            }
            t => return Err(format!("invalid log tag {t}")),
        };
        Ok(())
    }
}

fn command_kind_tag(kind: CommandKind) -> u8 {
    match kind {
        CommandKind::Act => 0,
        CommandKind::Pre => 1,
        CommandKind::PreAll => 2,
        CommandKind::Rd => 3,
        CommandKind::RdA => 4,
        CommandKind::Wr => 5,
        CommandKind::WrA => 6,
        CommandKind::Ref => 7,
    }
}

fn command_kind_from_tag(tag: u8) -> Result<CommandKind, String> {
    Ok(match tag {
        0 => CommandKind::Act,
        1 => CommandKind::Pre,
        2 => CommandKind::PreAll,
        3 => CommandKind::Rd,
        4 => CommandKind::RdA,
        5 => CommandKind::Wr,
        6 => CommandKind::WrA,
        7 => CommandKind::Ref,
        t => return Err(format!("invalid command kind tag {t}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DramDevice, DramConfig, BankLoc) {
        let cfg = DramConfig::ddr3_1600_paper();
        let dev = DramDevice::new(cfg.clone());
        (
            dev,
            cfg,
            BankLoc {
                channel: 0,
                rank: 0,
                bank: 0,
            },
        )
    }

    #[test]
    fn read_from_precharged_bank_is_illegal() {
        let (dev, _, loc) = setup();
        assert!(matches!(
            dev.earliest_issue(&Command::rd(loc, 0), 0),
            Err(IssueError::NoOpenRow { .. })
        ));
    }

    #[test]
    fn act_then_read_respects_trcd() {
        let (mut dev, cfg, loc) = setup();
        dev.issue(&Command::act(loc, 7), 0, cfg.timing.act_timings());
        let t = dev.earliest_issue(&Command::rd(loc, 0), 0).unwrap();
        assert_eq!(t, u64::from(cfg.timing.trcd));
    }

    #[test]
    fn reduced_act_timings_shorten_trcd_and_tras() {
        let (mut dev, cfg, loc) = setup();
        let red = ActTimings {
            trcd: cfg.timing.trcd - 4,
            tras: cfg.timing.tras - 8,
        };
        dev.issue(&Command::act(loc, 7), 0, red);
        let t = dev.earliest_issue(&Command::rd(loc, 0), 0).unwrap();
        assert_eq!(t, u64::from(cfg.timing.trcd - 4));
        let p = dev.earliest_issue(&Command::pre(loc), 0).unwrap();
        assert_eq!(p, u64::from(cfg.timing.tras - 8));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "legal only at")]
    fn premature_issue_panics() {
        let (mut dev, cfg, loc) = setup();
        dev.issue(&Command::act(loc, 7), 0, cfg.timing.act_timings());
        dev.issue(&Command::rd(loc, 0), 1, cfg.timing.act_timings());
    }

    #[test]
    fn precharge_reports_closed_row() {
        let (mut dev, cfg, loc) = setup();
        dev.issue(&Command::act(loc, 9), 0, cfg.timing.act_timings());
        let t = dev.earliest_issue(&Command::pre(loc), 0).unwrap();
        assert_eq!(t, u64::from(cfg.timing.tras));
        let out = dev.issue(&Command::pre(loc), t, cfg.timing.act_timings());
        assert_eq!(out.closed_rows, vec![(loc, 9, t)]);
        assert_eq!(dev.open_row(loc), None);
    }

    #[test]
    fn command_log_records_when_enabled() {
        let (mut dev, cfg, loc) = setup();
        dev.enable_log();
        dev.issue(&Command::act(loc, 1), 0, cfg.timing.act_timings());
        let log = dev.take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, CommandKind::Act);
    }
}
