//! Per-rank auto-refresh bookkeeping.
//!
//! DDR3 refresh is a rotating schedule: every `tREFI` the controller
//! issues one `REF`, and each `REF` replenishes the next *refresh bin* —
//! a group of consecutive rows in every bank of the rank (8 rows per bank
//! for the paper's 64K-row banks with 8192 bins per 64 ms window).
//!
//! This module tracks when each bin was last refreshed, which serves two
//! purposes:
//!
//! * the NUAT comparison mechanism reduces timings for rows refreshed
//!   recently, so it needs `last refresh time of row`;
//! * the motivation experiment (paper Figure 3) measures what fraction of
//!   activations land within 8 ms of the row's last refresh.
//!
//! The bin visit order is a fixed seeded permutation rather than
//! ascending bin index. Hardware row order is an internal device detail
//! anyway, and the permutation makes short simulations statistically
//! representative: with ascending order, a workload touching low rows
//! would see all its rows refreshed in the first few milliseconds of
//! simulated time, grossly inflating the "recently refreshed" fraction
//! that Figure 3 and NUAT depend on.

use crate::command::RowId;
use crate::BusCycle;

/// Rotating refresh schedule state for one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshState {
    /// Number of bins in the rotation (REFs per retention window).
    bins: u32,
    /// Rows per bin (per bank).
    rows_per_ref: u32,
    /// Position in the visit order of the next REF.
    next_pos: u32,
    /// Visit order: position → bin.
    order: Vec<u32>,
    /// Last refresh time of each bin (indexed by bin). Times before the
    /// simulation start are negative offsets: the schedule was already
    /// rotating when the simulation began.
    last_refresh: Vec<i64>,
    /// Cycle at which the next REF becomes due.
    due_at: BusCycle,
    /// Average refresh interval in cycles.
    trefi: BusCycle,
    /// Total REF commands issued.
    issued: u64,
}

impl RefreshState {
    /// Creates the schedule with the default seeded permutation.
    ///
    /// At time zero the rotation is assumed to have been running forever:
    /// the bin at visit position `i` was last refreshed
    /// `(bins − i) × tREFI` ago, so the position-0 bin is due first and
    /// bin ages are uniform in `[tREFI, retention]` — the steady state.
    ///
    /// # Panics
    ///
    /// Panics if `bins` or `rows_per_ref` is zero.
    pub fn new(bins: u32, rows_per_ref: u32, trefi: BusCycle) -> Self {
        Self::with_order(bins, rows_per_ref, trefi, true)
    }

    /// Creates the schedule, optionally with the identity visit order
    /// (useful for tests that reason about specific bins).
    ///
    /// # Panics
    ///
    /// Panics if `bins` or `rows_per_ref` is zero.
    pub fn with_order(bins: u32, rows_per_ref: u32, trefi: BusCycle, permute: bool) -> Self {
        assert!(bins > 0, "need at least one refresh bin");
        assert!(rows_per_ref > 0, "need at least one row per REF");
        let mut order: Vec<u32> = (0..bins).collect();
        if permute {
            // Deterministic Fisher–Yates with a fixed xorshift stream, so
            // every run of every experiment sees the same schedule.
            let mut state = 0x5EED_CAFE_F00Du64 | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in (1..bins as usize).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        let mut last_refresh = vec![0i64; bins as usize];
        for (pos, &bin) in order.iter().enumerate() {
            last_refresh[bin as usize] = -(i64::from(bins - pos as u32) * trefi as i64);
        }
        Self {
            bins,
            rows_per_ref,
            next_pos: 0,
            order,
            last_refresh,
            due_at: trefi,
            trefi,
            issued: 0,
        }
    }

    /// Shifts the first due time to `due` (builder style), keeping the
    /// `tREFI` period. Per-bank refresh staggers each bank's schedule
    /// across the `tREFI` window so the aggregate `REFpb` rate is
    /// `banks / tREFI` — the LPDDR4 `tREFIpb` cadence — instead of all
    /// banks falling due on the same cycle.
    #[must_use]
    pub fn with_first_due(mut self, due: BusCycle) -> Self {
        self.due_at = due;
        self
    }

    /// Number of refresh bins.
    pub fn bins(&self) -> u32 {
        self.bins
    }

    /// Cycle at which the next REF becomes due.
    pub fn due_at(&self) -> BusCycle {
        self.due_at
    }

    /// Total REF commands issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The bin covering `row`.
    pub fn bin_of(&self, row: RowId) -> u32 {
        (row / self.rows_per_ref).min(self.bins - 1)
    }

    /// The row range (first row, count; per bank) the *next* REF will
    /// replenish. The controller reads this alongside
    /// [`Self::apply_ref`] to inform charge-aware mechanisms which rows
    /// a refresh just restored.
    pub fn next_bin_rows(&self) -> (RowId, u32) {
        let bin = self.order[self.next_pos as usize];
        (bin * self.rows_per_ref, self.rows_per_ref)
    }

    /// Applies one REF command at `now`: refreshes the next bin in the
    /// visit order and schedules the following REF one `tREFI` later.
    pub fn apply_ref(&mut self, now: BusCycle) {
        let bin = self.order[self.next_pos as usize];
        self.last_refresh[bin as usize] = now as i64;
        self.next_pos = (self.next_pos + 1) % self.bins;
        // Due times accumulate from the schedule, not from the issue time,
        // so a late REF does not stretch the average interval.
        self.due_at += self.trefi;
        self.issued += 1;
    }

    /// Age of `row`'s last refresh at time `now`, in cycles.
    ///
    /// Saturates at zero if the bin was refreshed "after" `now` (cannot
    /// happen in forward simulation, but keeps the API total).
    pub fn refresh_age(&self, row: RowId, now: BusCycle) -> BusCycle {
        let last = self.last_refresh[self.bin_of(row) as usize];
        (now as i64 - last).max(0) as BusCycle
    }

    /// Serializes the schedule's mutable state (checkpoint support). The
    /// visit order is reconstructed from the fixed seed, not serialized.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        use fasthash::codec::*;
        put_u32(out, self.next_pos);
        put_usize(out, self.last_refresh.len());
        for &t in &self.last_refresh {
            put_i64(out, t);
        }
        put_u64(out, self.due_at);
        put_u64(out, self.issued);
    }

    /// Restores state saved by [`Self::save_state`] into a schedule built
    /// with the same geometry.
    pub fn load_state(&mut self, input: &mut &[u8]) -> Result<(), String> {
        use fasthash::codec::*;
        let next_pos = take_u32(input, "refresh next_pos")?;
        let n = take_len(input, 8, "refresh bins")?;
        if n != self.last_refresh.len() {
            return Err(format!(
                "refresh bin mismatch: checkpoint has {n}, schedule has {}",
                self.last_refresh.len()
            ));
        }
        let mut last_refresh = Vec::with_capacity(n);
        for _ in 0..n {
            last_refresh.push(take_i64(input, "bin refresh time")?);
        }
        self.next_pos = next_pos;
        self.last_refresh = last_refresh;
        self.due_at = take_u64(input, "refresh due_at")?;
        self.issued = take_u64(input, "refresh issued")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity() -> RefreshState {
        RefreshState::with_order(8192, 8, 6250, false)
    }

    #[test]
    fn initial_ages_are_uniformly_staggered() {
        let r = identity();
        // With the identity order, bin 0 is the stalest (a full window
        // ago) and the last bin the freshest (one tREFI ago).
        assert_eq!(r.refresh_age(0, 0), 8192 * 6250);
        assert_eq!(r.refresh_age((8191 * 8) as RowId, 0), 6250);
    }

    #[test]
    fn permuted_ages_cover_the_full_window() {
        let r = RefreshState::new(8192, 8, 6250);
        let ages: Vec<u64> = (0..8192u32).map(|b| r.refresh_age(b * 8, 0)).collect();
        let min = *ages.iter().min().unwrap();
        let max = *ages.iter().max().unwrap();
        assert_eq!(min, 6250);
        assert_eq!(max, 8192 * 6250);
        // Low bins are no longer systematically stale: the first 1% of
        // bins must span a wide age range.
        let head = &ages[..82];
        let spread = head.iter().max().unwrap() - head.iter().min().unwrap();
        assert!(spread > 8192 * 6250 / 4, "spread = {spread}");
    }

    #[test]
    fn permutation_is_deterministic() {
        let a = RefreshState::new(1024, 8, 6250);
        let b = RefreshState::new(1024, 8, 6250);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_ref_refreshes_stalest_bin_first() {
        let mut r = RefreshState::new(64, 4, 100);
        // The first REF must hit the bin with the maximum age.
        let stalest = (0..64u32).max_by_key(|&b| r.refresh_age(b * 4, 0)).unwrap();
        r.apply_ref(100);
        assert_eq!(r.refresh_age(stalest * 4, 100), 0);
    }

    #[test]
    fn apply_ref_rotates_and_resets_age() {
        let mut r = identity();
        r.apply_ref(6250);
        assert_eq!(r.refresh_age(0, 6250), 0);
        assert_eq!(r.refresh_age(0, 6350), 100);
        // The next visit is bin 1 (rows 8..15) under the identity order.
        r.apply_ref(12_500);
        assert_eq!(r.refresh_age(8, 12_500), 0);
    }

    #[test]
    fn due_time_advances_by_trefi() {
        let mut r = identity();
        assert_eq!(r.due_at(), 6250);
        r.apply_ref(6250);
        assert_eq!(r.due_at(), 12_500);
        // Late refresh does not drift the schedule.
        r.apply_ref(20_000);
        assert_eq!(r.due_at(), 18_750);
    }

    #[test]
    fn full_rotation_refreshes_every_row() {
        let mut r = RefreshState::new(16, 4, 100);
        for i in 0..16u64 {
            r.apply_ref((i + 1) * 100);
        }
        for row in 0..64 {
            assert!(r.refresh_age(row, 1600) <= 1600, "row {row}");
        }
        assert_eq!(r.issued(), 16);
    }

    #[test]
    fn next_bin_rows_tracks_the_visit_order() {
        let mut r = identity();
        assert_eq!(r.next_bin_rows(), (0, 8));
        r.apply_ref(6250);
        assert_eq!(r.next_bin_rows(), (8, 8));
        // The refreshed range covers exactly the rows whose age resets.
        r.apply_ref(12_500);
        assert_eq!(r.refresh_age(8, 12_500), 0);
        assert_eq!(r.refresh_age(15, 12_500), 0);
        assert_ne!(r.refresh_age(16, 12_500), 0);
    }

    #[test]
    fn first_due_can_be_staggered() {
        let mut r = RefreshState::with_order(16, 4, 100, false).with_first_due(25);
        assert_eq!(r.due_at(), 25);
        r.apply_ref(25);
        // The period stays tREFI; only the phase shifted.
        assert_eq!(r.due_at(), 125);
    }

    #[test]
    fn rows_beyond_last_bin_clamp() {
        let r = RefreshState::new(16, 4, 100);
        assert_eq!(r.bin_of(1_000_000), 15);
    }
}
