//! DDR3 timing parameters.
//!
//! All values are in DRAM bus cycles (tCK units). The defaults implement
//! DDR3-1600 11-11-11 at a 800 MHz bus (tCK = 1.25 ns), matching the
//! paper's Table 1 (`tRCD`/`tRAS` of 11/28 cycles).

/// The `tRCD`/`tRAS` pair applied to a single activation.
///
/// This is the only seam ChargeCache needs: a hit in the HCRAC issues the
/// `ACT` with a reduced pair, a miss issues it with the specification pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActTimings {
    /// Activate-to-read/write delay for this activation, in bus cycles.
    pub trcd: u32,
    /// Activate-to-precharge delay for this activation, in bus cycles.
    pub tras: u32,
}

impl ActTimings {
    /// Applies cycle reductions, saturating at 1 cycle (a zero-cycle
    /// `tRCD`/`tRAS` is physically meaningless).
    ///
    /// Saturation silently weakens the requested reduction; use
    /// [`ActTimings::clamped_by`] to detect it — mechanisms surface a
    /// `clamped_reduced_activates` counter so sweeps combining fast
    /// timing presets with aggressive reductions stay auditable.
    pub fn reduced_by(self, trcd_reduction: u32, tras_reduction: u32) -> Self {
        Self {
            trcd: self.trcd.saturating_sub(trcd_reduction).max(1),
            tras: self.tras.saturating_sub(tras_reduction).max(1),
        }
    }

    /// True if [`ActTimings::reduced_by`] with these reductions would
    /// saturate at the 1-cycle floor on either field (i.e. the full
    /// reduction cannot be applied to this pair).
    pub fn clamped_by(self, trcd_reduction: u32, tras_reduction: u32) -> bool {
        trcd_reduction >= self.trcd || tras_reduction >= self.tras
    }
}

/// Complete DDR3 timing parameter set, in bus cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// Bus clock period in nanoseconds (1.25 for DDR3-1600).
    pub tck_ns: f64,
    /// Activate-to-read/write delay.
    pub trcd: u32,
    /// Read (CAS) latency.
    pub tcl: u32,
    /// Write (CAS write) latency.
    pub tcwl: u32,
    /// Precharge latency.
    pub trp: u32,
    /// Activate-to-precharge minimum.
    pub tras: u32,
    /// Activate-to-activate, same bank (row cycle time).
    pub trc: u32,
    /// Burst length on the bus (BL8 = 4 bus cycles).
    pub tbl: u32,
    /// Column-to-column delay.
    pub tccd: u32,
    /// Read-to-precharge delay.
    pub trtp: u32,
    /// Write recovery time (end of write data to precharge).
    pub twr: u32,
    /// Write-to-read turnaround (end of write data to read command).
    pub twtr: u32,
    /// Activate-to-activate, different banks of the same rank.
    pub trrd: u32,
    /// Four-activate window.
    pub tfaw: u32,
    /// Refresh cycle time.
    pub trfc: u32,
    /// Average refresh interval.
    pub trefi: u32,
    /// Rank-to-rank switch penalty on the data bus.
    pub trtrs: u32,
    /// Column-to-column delay within one bank group (`tCCD_L`). Equal to
    /// [`TimingParams::tccd`] on ungrouped devices; device families with
    /// bank groups (DDR4, HBM2) stretch it via `FamilyParams::apply_to`.
    pub tccd_l: u32,
    /// Column-to-column delay across bank groups (`tCCD_S`). Equal to
    /// [`TimingParams::tccd`] on ungrouped devices.
    pub tccd_s: u32,
    /// Activate-to-activate within one bank group (`tRRD_L`). Equal to
    /// [`TimingParams::trrd`] on ungrouped devices.
    pub trrd_l: u32,
    /// Activate-to-activate across bank groups (`tRRD_S`). Equal to
    /// [`TimingParams::trrd`] on ungrouped devices.
    pub trrd_s: u32,
    /// Per-bank refresh cycle time (`tRFCpb`); the lockout a single-bank
    /// `REF` imposes on its target bank under per-bank refresh. Equal to
    /// [`TimingParams::trfc`] on families without per-bank refresh.
    pub trfcpb: u32,
}

/// Named speed/standard presets (paper Section 7.2: ChargeCache applies
/// to any DDR-derived interface with explicit ACT/PRE commands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeedBin {
    /// DDR3-1066 (CL 7).
    Ddr3_1066,
    /// DDR3-1333 (CL 9).
    Ddr3_1333,
    /// DDR3-1600 (CL 11) — the paper's Table 1 device.
    Ddr3_1600,
    /// DDR3-1866 (CL 13).
    Ddr3_1866,
    /// DDR3-2133 (CL 14) — the fastest JEDEC DDR3 bin.
    Ddr3_2133,
    /// DDR4-2400-class timing on the same model (CL 17).
    Ddr4_2400,
    /// LPDDR3-1600-class timing (mobile; relaxed core timings).
    Lpddr3_1600,
    /// LPDDR4x-3200-class timing (mobile; long analog core timings on a
    /// fast 1600 MHz bus, BL16).
    #[allow(non_camel_case_types)]
    Lpddr4x_3200,
    /// HBM2-class timing (stacked; 1000 MHz bus, small rows, BL4).
    Hbm2_1000,
}

impl SpeedBin {
    /// All presets, slowest DDR3 bin first.
    pub const ALL: [SpeedBin; 9] = [
        SpeedBin::Ddr3_1066,
        SpeedBin::Ddr3_1333,
        SpeedBin::Ddr3_1600,
        SpeedBin::Ddr3_1866,
        SpeedBin::Ddr3_2133,
        SpeedBin::Ddr4_2400,
        SpeedBin::Lpddr3_1600,
        SpeedBin::Lpddr4x_3200,
        SpeedBin::Hbm2_1000,
    ];

    /// The JEDEC DDR3 speed grades, slowest first (the
    /// latency-sensitivity sweep axis).
    pub const DDR3: [SpeedBin; 5] = [
        SpeedBin::Ddr3_1066,
        SpeedBin::Ddr3_1333,
        SpeedBin::Ddr3_1600,
        SpeedBin::Ddr3_1866,
        SpeedBin::Ddr3_2133,
    ];

    /// The timing parameter set for this bin.
    pub fn timing(&self) -> TimingParams {
        TimingParams::for_bin(*self)
    }

    /// The preset name used by the [`crate::TimingSpec`] grammar.
    pub fn name(&self) -> &'static str {
        match self {
            SpeedBin::Ddr3_1066 => "ddr3-1066",
            SpeedBin::Ddr3_1333 => "ddr3-1333",
            SpeedBin::Ddr3_1600 => "ddr3-1600",
            SpeedBin::Ddr3_1866 => "ddr3-1866",
            SpeedBin::Ddr3_2133 => "ddr3-2133",
            SpeedBin::Ddr4_2400 => "ddr4-2400",
            SpeedBin::Lpddr3_1600 => "lpddr3-1600",
            SpeedBin::Lpddr4x_3200 => "lpddr4x-3200",
            SpeedBin::Hbm2_1000 => "hbm2-1000",
        }
    }

    /// The bin whose [`SpeedBin::name`] is `name`, if any.
    pub fn from_name(name: &str) -> Option<SpeedBin> {
        SpeedBin::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// The device family this bin is listed under
    /// (`cc-sim --list-timings` groups presets by family; the legacy
    /// LPDDR3 bin is grouped with the LPDDR family).
    pub fn family_name(&self) -> &'static str {
        match self {
            SpeedBin::Ddr3_1066
            | SpeedBin::Ddr3_1333
            | SpeedBin::Ddr3_1600
            | SpeedBin::Ddr3_1866
            | SpeedBin::Ddr3_2133 => "ddr3",
            SpeedBin::Ddr4_2400 => "ddr4",
            SpeedBin::Lpddr3_1600 | SpeedBin::Lpddr4x_3200 => "lpddr4x",
            SpeedBin::Hbm2_1000 => "hbm2",
        }
    }

    /// One-line description for `cc-sim --list-timings`.
    pub fn describe(&self) -> &'static str {
        match self {
            SpeedBin::Ddr3_1066 => "DDR3-1066 7-7-7, 533 MHz bus (tCK 1.875 ns)",
            SpeedBin::Ddr3_1333 => "DDR3-1333 9-9-9, 667 MHz bus (tCK 1.5 ns)",
            SpeedBin::Ddr3_1600 => {
                "DDR3-1600 11-11-11, 800 MHz bus (tCK 1.25 ns) — the paper's Table 1 device"
            }
            SpeedBin::Ddr3_1866 => "DDR3-1866 13-13-13, 933 MHz bus (tCK 1.071 ns)",
            SpeedBin::Ddr3_2133 => "DDR3-2133 14-14-14, 1067 MHz bus (tCK 0.9375 ns)",
            SpeedBin::Ddr4_2400 => "DDR4-2400-class 17-17-17 on the DDR3 model (tCK 0.833 ns)",
            SpeedBin::Lpddr3_1600 => "LPDDR3-1600-class, relaxed mobile core timings (tCK 1.25 ns)",
            SpeedBin::Lpddr4x_3200 => {
                "LPDDR4x-3200-class, long analog core timings, BL16 (tCK 0.625 ns)"
            }
            SpeedBin::Hbm2_1000 => "HBM2-class stacked timing, small rows, BL4 (tCK 1.0 ns)",
        }
    }
}

impl TimingParams {
    /// DDR3-1600 (11-11-11) parameters as used in the paper's Table 1.
    ///
    /// `tREFI` is 7.8125 µs (6250 cycles), giving exactly 8192 refresh
    /// commands per 64 ms retention window; `tRFC` corresponds to a 4 Gb
    /// device (260 ns).
    pub fn ddr3_1600() -> Self {
        Self {
            tck_ns: 1.25,
            trcd: 11,
            tcl: 11,
            tcwl: 8,
            trp: 11,
            tras: 28,
            trc: 39,
            tbl: 4,
            tccd: 4,
            trtp: 6,
            twr: 12,
            twtr: 6,
            trrd: 5,
            tfaw: 24,
            trfc: 208,
            trefi: 6250,
            trtrs: 2,
            tccd_l: 4,
            tccd_s: 4,
            trrd_l: 5,
            trrd_s: 5,
            trfcpb: 208,
        }
    }

    /// LPDDR4x-3200-class parameters: a fast 1600 MHz bus with the long
    /// analog core timings of mobile DRAM (tRCD 18 ns → 29 cycles) and a
    /// BL16 burst. `tRFCpb` matches `tRFC` here; the per-bank lockout is
    /// a *family* property (`FamilyParams::apply_to` halves it for the
    /// `lpddr4x` family's per-bank refresh).
    pub fn lpddr4x_3200() -> Self {
        Self {
            tck_ns: 0.625,
            trcd: 29,
            tcl: 28,
            tcwl: 14,
            trp: 29,
            tras: 68,
            trc: 97,
            tbl: 8,
            tccd: 8,
            trtp: 12,
            twr: 29,
            twtr: 16,
            trrd: 16,
            tfaw: 64,
            trfc: 448,
            trefi: 6240,
            trtrs: 2,
            tccd_l: 8,
            tccd_s: 8,
            trrd_l: 16,
            trrd_s: 16,
            trfcpb: 448,
        }
    }

    /// HBM2-class parameters: a 1000 MHz bus, short BL4 bursts into small
    /// rows, and a compact four-activate window. Bank-group spacing
    /// (`tCCD_L`/`tRRD_L`) is a *family* property applied by
    /// `FamilyParams::apply_to`; the bare bin is ungrouped.
    pub fn hbm2_1000() -> Self {
        Self {
            tck_ns: 1.0,
            trcd: 14,
            tcl: 14,
            tcwl: 7,
            trp: 14,
            tras: 34,
            trc: 48,
            tbl: 2,
            tccd: 2,
            trtp: 4,
            twr: 15,
            twtr: 6,
            trrd: 4,
            tfaw: 16,
            trfc: 260,
            trefi: 3900,
            trtrs: 2,
            tccd_l: 2,
            tccd_s: 2,
            trrd_l: 4,
            trrd_s: 4,
            trfcpb: 260,
        }
    }

    /// Parameters for a named speed bin. Core analog timings (`tRCD`,
    /// `tRAS`, `tRP`, `tRFC` in nanoseconds) are nearly constant across
    /// bins; what changes is the clock they are quantized against.
    pub fn for_bin(bin: SpeedBin) -> Self {
        match bin {
            SpeedBin::Ddr3_1066 => Self::from_ns(1.875, 13.125, 37.5, 13.125, 7, 6, 260.0),
            SpeedBin::Ddr3_1333 => Self::from_ns(1.5, 13.5, 36.0, 13.5, 9, 7, 260.0),
            SpeedBin::Ddr3_1600 => Self::ddr3_1600(),
            SpeedBin::Ddr3_1866 => Self::from_ns(1.071, 13.91, 34.0, 13.91, 13, 9, 260.0),
            SpeedBin::Ddr3_2133 => Self::from_ns(0.9375, 13.125, 33.0, 13.125, 14, 10, 260.0),
            SpeedBin::Ddr4_2400 => Self::from_ns(0.833, 14.16, 32.0, 14.16, 17, 12, 350.0),
            SpeedBin::Lpddr3_1600 => Self::from_ns(1.25, 18.0, 42.0, 18.0, 12, 8, 210.0),
            SpeedBin::Lpddr4x_3200 => Self::lpddr4x_3200(),
            SpeedBin::Hbm2_1000 => Self::hbm2_1000(),
        }
    }

    /// Builds a parameter set from analog (nanosecond) core timings and a
    /// clock period, quantizing with ceiling division as JEDEC does.
    fn from_ns(
        tck_ns: f64,
        trcd_ns: f64,
        tras_ns: f64,
        trp_ns: f64,
        tcl: u32,
        tcwl: u32,
        trfc_ns: f64,
    ) -> Self {
        let cyc = |ns: f64| -> u32 { (ns / tck_ns).ceil() as u32 };
        let trcd = cyc(trcd_ns);
        let tras = cyc(tras_ns);
        let trp = cyc(trp_ns);
        let trrd = cyc(6.0);
        let trfc = cyc(trfc_ns);
        Self {
            tck_ns,
            trcd,
            tcl,
            tcwl,
            trp,
            tras,
            trc: tras + trp,
            tbl: 4,
            tccd: 4,
            trtp: cyc(7.5),
            twr: cyc(15.0),
            twtr: cyc(7.5),
            trrd,
            tfaw: cyc(30.0),
            trfc,
            trefi: cyc(7812.5),
            trtrs: 2,
            tccd_l: 4,
            tccd_s: 4,
            trrd_l: trrd,
            trrd_s: trrd,
            trfcpb: trfc,
        }
    }

    /// The specification (non-reduced) activation timing pair.
    pub fn act_timings(&self) -> ActTimings {
        ActTimings {
            trcd: self.trcd,
            tras: self.tras,
        }
    }

    /// Bus cycles per millisecond for this clock.
    pub fn cycles_per_ms(&self) -> u64 {
        (1_000_000.0 / self.tck_ns).round() as u64
    }

    /// Converts a duration in milliseconds to bus cycles.
    pub fn ms_to_cycles(&self, ms: f64) -> u64 {
        (ms * 1_000_000.0 / self.tck_ns).round() as u64
    }

    /// Number of refresh commands per retention window (`window_ms`).
    pub fn refs_per_window(&self, window_ms: f64) -> u64 {
        self.ms_to_cycles(window_ms) / u64::from(self.trefi)
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relationship. The checks
    /// encode JEDEC structural requirements the rest of the model relies
    /// on (e.g. `tRC ≥ tRAS + tRP`, burst fits in `tCCD`).
    pub fn validate(&self) -> Result<(), String> {
        if self.tck_ns <= 0.0 {
            return Err("tCK must be positive".into());
        }
        if self.trc < self.tras + self.trp {
            return Err(format!(
                "tRC ({}) must be at least tRAS + tRP ({})",
                self.trc,
                self.tras + self.trp
            ));
        }
        if self.tras < self.trcd {
            return Err("tRAS must be at least tRCD".into());
        }
        if self.tccd < self.tbl {
            return Err("tCCD must cover the burst length".into());
        }
        if self.tfaw < self.trrd {
            return Err("tFAW must be at least tRRD".into());
        }
        if self.trefi <= self.trfc {
            return Err("tREFI must exceed tRFC".into());
        }
        if self.tccd_l < self.tccd_s {
            return Err(format!(
                "tCCD_L ({}) must be at least tCCD_S ({})",
                self.tccd_l, self.tccd_s
            ));
        }
        if self.trrd_l < self.trrd_s {
            return Err(format!(
                "tRRD_L ({}) must be at least tRRD_S ({})",
                self.trrd_l, self.trrd_s
            ));
        }
        if self.tccd_s < self.tbl {
            return Err("tCCD_S must cover the burst length".into());
        }
        if self.trfcpb > self.trfc {
            return Err("tRFCpb must not exceed tRFC".into());
        }
        for (name, v) in [
            ("trcd", self.trcd),
            ("tcl", self.tcl),
            ("tcwl", self.tcwl),
            ("trp", self.trp),
            ("tras", self.tras),
            ("tbl", self.tbl),
            ("trrd", self.trrd),
            ("tccd_s", self.tccd_s),
            ("trrd_s", self.trrd_s),
            ("trfcpb", self.trfcpb),
        ] {
            if v == 0 {
                return Err(format!("{name} must be non-zero"));
            }
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600_is_valid() {
        TimingParams::ddr3_1600().validate().unwrap();
    }

    #[test]
    fn paper_table1_cycles() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.trcd, 11);
        assert_eq!(t.tras, 28);
        // ns sanity: 11 × 1.25 = 13.75 ns, 28 × 1.25 = 35 ns (paper Table 2).
        assert!((f64::from(t.trcd) * t.tck_ns - 13.75).abs() < 1e-9);
        assert!((f64::from(t.tras) * t.tck_ns - 35.0).abs() < 1e-9);
    }

    #[test]
    fn refresh_schedule_covers_window() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.refs_per_window(64.0), 8192);
    }

    #[test]
    fn reduced_act_timings_saturate() {
        let a = ActTimings { trcd: 11, tras: 28 };
        let r = a.reduced_by(4, 8);
        assert_eq!(r, ActTimings { trcd: 7, tras: 20 });
        let floor = a.reduced_by(100, 100);
        assert_eq!(floor, ActTimings { trcd: 1, tras: 1 });
    }

    #[test]
    fn clamped_by_detects_saturation() {
        let a = ActTimings { trcd: 11, tras: 28 };
        assert!(!a.clamped_by(4, 8));
        assert!(!a.clamped_by(10, 27)); // exactly reaches the 1-cycle floor
        assert!(a.clamped_by(11, 8)); // tRCD cannot absorb the reduction
        assert!(a.clamped_by(4, 28)); // tRAS cannot absorb the reduction
    }

    #[test]
    fn invalid_params_detected() {
        let mut t = TimingParams::ddr3_1600();
        t.trc = 10;
        assert!(t.validate().is_err());

        let mut t = TimingParams::ddr3_1600();
        t.tccd = 1;
        assert!(t.validate().is_err());

        let mut t = TimingParams::ddr3_1600();
        t.trefi = t.trfc;
        assert!(t.validate().is_err());
    }

    #[test]
    fn all_speed_bins_validate() {
        for bin in SpeedBin::ALL {
            let t = bin.timing();
            t.validate().unwrap_or_else(|e| panic!("{bin:?}: {e}"));
        }
    }

    #[test]
    fn speed_bin_analog_timings_are_clock_independent() {
        // tRCD in nanoseconds stays within the DDR3 13-14 ns band across
        // the DDR3 bins even though the cycle counts differ.
        for bin in SpeedBin::DDR3 {
            let t = bin.timing();
            let trcd_ns = f64::from(t.trcd) * t.tck_ns;
            assert!((13.0..=15.1).contains(&trcd_ns), "{bin:?}: {trcd_ns}");
        }
    }

    #[test]
    fn faster_clocks_need_more_cycles() {
        let slow = SpeedBin::Ddr3_1066.timing();
        let fast = SpeedBin::Ddr4_2400.timing();
        assert!(fast.trcd > slow.trcd);
        assert!(fast.tck_ns < slow.tck_ns);
    }

    #[test]
    fn ms_conversion_roundtrip() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.ms_to_cycles(1.0), 800_000);
        assert_eq!(t.cycles_per_ms(), 800_000);
    }
}
