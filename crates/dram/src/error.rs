//! Error types for command legality checks.

use std::error::Error;
use std::fmt;

use crate::command::BankLoc;

/// Why a command cannot be issued in the current device state.
///
/// Timing (the command is legal but not yet) is *not* an error; it is
/// reported as a future cycle by `earliest_issue`. These variants are
/// structural: issuing would be meaningless regardless of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueError {
    /// RD/WR/PRE-like command addressed to a bank with no open row.
    NoOpenRow {
        /// The bank in question.
        loc: BankLoc,
    },
    /// ACT addressed to a bank that already has an open row.
    RowAlreadyOpen {
        /// The bank in question.
        loc: BankLoc,
        /// The row currently open.
        open_row: u32,
    },
    /// REF while one or more banks still have open rows.
    BanksNotPrecharged {
        /// Channel of the rank.
        channel: u8,
        /// Rank index.
        rank: u8,
    },
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueError::NoOpenRow { loc } => {
                write!(f, "no open row in bank {loc:?}")
            }
            IssueError::RowAlreadyOpen { loc, open_row } => {
                write!(f, "row {open_row} already open in bank {loc:?}")
            }
            IssueError::BanksNotPrecharged { channel, rank } => {
                write!(
                    f,
                    "refresh requires all banks precharged (channel {channel}, rank {rank})"
                )
            }
        }
    }
}

impl Error for IssueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let loc = BankLoc {
            channel: 0,
            rank: 0,
            bank: 3,
        };
        for e in [
            IssueError::NoOpenRow { loc },
            IssueError::RowAlreadyOpen { loc, open_row: 9 },
            IssueError::BanksNotPrecharged {
                channel: 0,
                rank: 0,
            },
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
