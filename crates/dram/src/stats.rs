//! Command-count statistics for the device.

use crate::command::CommandKind;

/// Running totals of every command kind issued to a device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Row activations.
    pub acts: u64,
    /// Single-bank precharges.
    pub pres: u64,
    /// All-bank precharges.
    pub pre_alls: u64,
    /// Reads (including RDA).
    pub reads: u64,
    /// Writes (including WRA).
    pub writes: u64,
    /// Auto-refreshes.
    pub refs: u64,
}

impl DeviceStats {
    /// Records one command.
    pub fn record(&mut self, kind: CommandKind) {
        match kind {
            CommandKind::Act => self.acts += 1,
            CommandKind::Pre => self.pres += 1,
            CommandKind::PreAll => self.pre_alls += 1,
            CommandKind::Rd | CommandKind::RdA => self.reads += 1,
            CommandKind::Wr | CommandKind::WrA => self.writes += 1,
            CommandKind::Ref => self.refs += 1,
        }
    }

    /// Total column commands (reads + writes).
    pub fn column_commands(&self) -> u64 {
        self.reads + self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_kind() {
        let mut s = DeviceStats::default();
        s.record(CommandKind::Act);
        s.record(CommandKind::Rd);
        s.record(CommandKind::RdA);
        s.record(CommandKind::WrA);
        s.record(CommandKind::Ref);
        assert_eq!(s.acts, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.refs, 1);
        assert_eq!(s.column_commands(), 3);
    }
}
