//! Declarative DRAM device families and the `FamilySpec` grammar.
//!
//! The paper evaluates ChargeCache on exactly one device — DDR3-1600 —
//! but its claim is device physics, not a DDR3 artifact (Section 7.2).
//! A *device family* captures what a standard's **structure** fixes and
//! a speed bin does not: bank grouping and its long/short command
//! spacing (`tCCD_L`/`tCCD_S`, `tRRD_L`/`tRRD_S`), per-bank versus
//! all-bank refresh, channel and pseudo-channel counts, bank counts,
//! row/column geometry and the burst length.
//!
//! Families are described declaratively — a [`FamilyParams`] record in a
//! [`FamilyRegistry`], the way probe-rs describes chips as data rather
//! than code — and selected with a [`FamilySpec`] string using the same
//! `name(key=val,...)` grammar as `TimingSpec` and the mechanism layer's
//! `MechanismSpec`:
//!
//! ```text
//! spec     := family | family "(" params ")"
//! params   := param ("," param)*
//! param    := key "=" value
//! value    := int | token              # e.g. banks=16, refresh=per-bank
//! ```
//!
//! [`FamilySpec`] round-trips: `spec.to_string().parse()` reproduces the
//! spec exactly. Resolution is validated: incoherent group spacing
//! (`tCCD_L < tCCD_S`) or per-bank refresh on a family without it are
//! rejected as typed [`FamilyError`]s, not simulated.
//!
//! # Example
//!
//! ```
//! use dram::family::{self, FamilySpec, RefreshGranularity};
//!
//! // The default family is the paper's DDR3 device.
//! let spec = FamilySpec::default();
//! assert_eq!(spec.to_string(), "ddr3");
//!
//! // DDR4-style: four bank groups with long/short column spacing.
//! let ddr4 = family::resolve(&"ddr4".parse().unwrap()).unwrap();
//! assert_eq!(ddr4.bank_groups, 4);
//!
//! // LPDDR4x-style: per-bank refresh by default.
//! let lp = family::resolve(&"lpddr4x".parse().unwrap()).unwrap();
//! assert_eq!(lp.refresh, RefreshGranularity::PerBank);
//!
//! // Structural nonsense is a typed error, not a simulation.
//! assert!(family::resolve(&"ddr3(refresh=per-bank)".parse().unwrap()).is_err());
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::{OnceLock, RwLock};

use crate::config::Organization;
use crate::timing::{SpeedBin, TimingParams};

/// Refresh command scope of a device family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefreshGranularity {
    /// One `REF` refreshes the next row group in *every* bank of the
    /// rank and locks the whole rank out for `tRFC` (DDR3/DDR4 style).
    AllBank,
    /// One `REF` refreshes the next row group in a *single* bank and
    /// locks only that bank out for `tRFCpb`; banks take turns across
    /// the `tREFI` window (LPDDR4 `REFpb` style).
    PerBank,
}

impl RefreshGranularity {
    /// The token used by the [`FamilySpec`] grammar (`refresh=...`).
    pub fn name(&self) -> &'static str {
        match self {
            RefreshGranularity::AllBank => "all-bank",
            RefreshGranularity::PerBank => "per-bank",
        }
    }
}

impl fmt::Display for RefreshGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed rejection from family resolution ([`FamilyRegistry::resolve`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyError {
    /// The spec names a family the registry does not know.
    UnknownFamily {
        /// The unknown name.
        name: String,
        /// Known family names, comma-separated.
        known: String,
    },
    /// The spec carries a key the grammar does not accept.
    UnknownKey {
        /// The family being resolved.
        family: String,
        /// The unknown key.
        key: String,
        /// Accepted keys, comma-separated.
        known: String,
    },
    /// A key was given a value of the wrong shape or range.
    BadValue {
        /// The offending key.
        key: String,
        /// What was wrong with it.
        message: String,
    },
    /// Long (same-group) spacing shorter than short (cross-group)
    /// spacing — structurally meaningless.
    IncoherentGroupSpacing {
        /// `"tCCD"` or `"tRRD"`.
        which: &'static str,
        /// The same-group (long) value in cycles.
        long: u32,
        /// The cross-group (short) value in cycles.
        short: u32,
    },
    /// `refresh=per-bank` requested on a family whose standard has no
    /// per-bank refresh command.
    PerBankRefreshUnsupported {
        /// The family that cannot refresh per bank.
        family: String,
    },
    /// The resolved geometry is inconsistent (bank groups not dividing
    /// banks, non-power-of-two dimensions, …).
    Geometry {
        /// The violated constraint.
        message: String,
    },
}

impl fmt::Display for FamilyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FamilyError::UnknownFamily { name, known } => {
                write!(f, "unknown device family {name:?} (known: {known})")
            }
            FamilyError::UnknownKey { family, key, known } => {
                write!(
                    f,
                    "unknown family parameter {key:?} for {family} (known: {known})"
                )
            }
            FamilyError::BadValue { key, message } => write!(f, "bad value for {key}: {message}"),
            FamilyError::IncoherentGroupSpacing { which, long, short } => write!(
                f,
                "incoherent group spacing: {which}_L ({long}) is shorter than {which}_S ({short})"
            ),
            FamilyError::PerBankRefreshUnsupported { family } => {
                write!(f, "family {family} has no per-bank refresh command")
            }
            FamilyError::Geometry { message } => write!(f, "incoherent family geometry: {message}"),
        }
    }
}

impl std::error::Error for FamilyError {}

/// One override value of a [`FamilySpec`]: a count or a bare token
/// (`refresh=per-bank`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamilyValue {
    /// An unsigned integer (geometry and cycle-count keys).
    Int(u32),
    /// A bare token (the `refresh` key).
    Token(String),
}

impl fmt::Display for FamilyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FamilyValue::Int(i) => write!(f, "{i}"),
            FamilyValue::Token(t) => f.write_str(t),
        }
    }
}

impl FromStr for FamilyValue {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty parameter value".into());
        }
        if let Ok(i) = s.parse::<u32>() {
            return Ok(FamilyValue::Int(i));
        }
        if is_token(s) {
            return Ok(FamilyValue::Token(s.to_string()));
        }
        Err(format!("unparsable family value {s:?}"))
    }
}

/// True for tokens matching `[A-Za-z_][A-Za-z0-9_.+-]*` (the shared
/// spec-grammar token rule).
fn is_token(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '+' | '-'))
}

/// Override keys accepted by [`FamilyRegistry::resolve`].
pub const FAMILY_KEYS: &[&str] = &[
    "bank_groups",
    "banks",
    "ranks",
    "channels",
    "pseudo_channels",
    "rows",
    "columns",
    "burst",
    "refresh",
    "retention",
    "tccd_l",
    "tccd_s",
    "trrd_l",
    "trrd_s",
    "trfcpb",
];

/// A device-family selection: a registered family name plus typed
/// overrides, mirroring the `TimingSpec`/`MechanismSpec` grammar.
///
/// Overrides keep insertion order, so [`fmt::Display`] output is
/// deterministic; only *explicitly set* overrides are stored — the
/// registered family supplies every other field at resolution time.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySpec {
    family: String,
    params: Vec<(String, FamilyValue)>,
}

impl FamilySpec {
    /// A spec with no overrides.
    ///
    /// # Panics
    ///
    /// Panics if `family` is not a valid token
    /// (`[A-Za-z_][A-Za-z0-9_.+-]*`). Unknown (but well-formed) family
    /// names are accepted here and rejected at resolution.
    pub fn new(family: impl Into<String>) -> Self {
        let family = family.into();
        assert!(is_token(&family), "invalid family name {family:?}");
        Self {
            family,
            params: Vec::new(),
        }
    }

    /// Builder-style override setter.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not a valid token.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: FamilyValue) -> Self {
        self.set(key, value);
        self
    }

    /// Sets (or replaces) one override.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not a valid token.
    pub fn set(&mut self, key: impl Into<String>, value: FamilyValue) {
        let key = key.into();
        assert!(is_token(&key), "invalid family key {key:?}");
        match self.params.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.params.push((key, value)),
        }
    }

    /// The family name (registry lookup key).
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The explicitly set overrides, in insertion order.
    pub fn params(&self) -> &[(String, FamilyValue)] {
        &self.params
    }

    /// One override, if explicitly set.
    pub fn get(&self, key: &str) -> Option<&FamilyValue> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True when this spec resolves to the same device structure as the
    /// bare default (`ddr3`) — the structural comparison mirrors
    /// `TimingSpec::is_default`, so `ddr3()` and redundant overrides
    /// behave exactly like the default.
    pub fn is_default(&self) -> bool {
        if self.family == "ddr3" && self.params.is_empty() {
            return true;
        }
        match (resolve(self), resolve(&FamilySpec::default())) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        }
    }
}

impl Default for FamilySpec {
    /// The paper's device family: bare `ddr3`.
    fn default() -> Self {
        Self::new("ddr3")
    }
}

impl fmt::Display for FamilySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.family)?;
        if self.params.is_empty() {
            return Ok(());
        }
        f.write_str("(")?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{k}={v}")?;
        }
        f.write_str(")")
    }
}

impl FromStr for FamilySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let (family, params_src) = match s.find('(') {
            None => (s, None),
            Some(open) => {
                let Some(body) = s[open + 1..].strip_suffix(')') else {
                    return Err(format!("family spec {s:?} is missing its closing ')'"));
                };
                (&s[..open], Some(body))
            }
        };
        let family = family.trim();
        if !is_token(family) {
            return Err(format!("invalid family name {family:?}"));
        }
        let mut spec = FamilySpec::new(family);
        if let Some(body) = params_src {
            let body = body.trim();
            if !body.is_empty() {
                for part in body.split(',') {
                    let Some((k, v)) = part.split_once('=') else {
                        return Err(format!("family parameter {part:?} is not key=value"));
                    };
                    let k = k.trim();
                    if !is_token(k) {
                        return Err(format!("invalid family key {k:?}"));
                    }
                    if spec.get(k).is_some() {
                        return Err(format!("duplicate family parameter {k:?}"));
                    }
                    spec.set(k, v.parse::<FamilyValue>()?);
                }
            }
        }
        Ok(spec)
    }
}

/// A fully resolved device-family description: the structural facts a
/// standard fixes, independent of the speed bin.
///
/// Group-spacing fields (`tccd_l`, …) are in bus cycles and `0` means
/// "inherit the speed bin's value" — [`FamilyParams::apply_to`] patches
/// only explicit ones onto a resolved [`TimingParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyParams {
    /// Canonical family name (registry key).
    pub name: String,
    /// Bank groups per rank (1 = ungrouped).
    pub bank_groups: u8,
    /// Banks per rank (across all groups).
    pub banks: u8,
    /// Ranks per channel.
    pub ranks: u8,
    /// Physical channels.
    pub channels: u8,
    /// Pseudo-channels per physical channel (HBM2); each is modeled as
    /// an independent channel, so the effective channel count is
    /// `channels × pseudo_channels`.
    pub pseudo_channels: u8,
    /// Rows per bank.
    pub rows: u32,
    /// Columns per row at cache-line granularity.
    pub columns: u32,
    /// Device burst length (BL8 → `tBL` of 4 bus cycles).
    pub burst: u32,
    /// Refresh command scope.
    pub refresh: RefreshGranularity,
    /// Whether the standard defines a per-bank refresh command at all
    /// (`refresh=per-bank` on a family without one is a typed error).
    pub per_bank_capable: bool,
    /// Retention window in milliseconds.
    pub retention_ms: f64,
    /// The speed bin a family-default run uses.
    pub default_bin: SpeedBin,
    /// Same-group column spacing in cycles (0 = the bin's `tccd`).
    pub tccd_l: u32,
    /// Cross-group column spacing in cycles (0 = the bin's `tccd`).
    pub tccd_s: u32,
    /// Same-group activate spacing in cycles (0 = the bin's `trrd`).
    pub trrd_l: u32,
    /// Cross-group activate spacing in cycles (0 = the bin's `trrd`).
    pub trrd_s: u32,
    /// Per-bank refresh lockout in cycles (0 = the bin's `trfc`).
    pub trfcpb: u32,
}

impl FamilyParams {
    /// The memory-system organization this family describes.
    /// Pseudo-channels multiply into the channel count; the line size is
    /// the model-wide 64 B.
    pub fn organization(&self) -> Organization {
        Organization {
            channels: self.channels.saturating_mul(self.pseudo_channels),
            ranks: self.ranks,
            banks: self.banks,
            bank_groups: self.bank_groups,
            rows: self.rows,
            columns: self.columns,
            line_bytes: 64,
        }
    }

    /// Patches the family's structural timing onto a resolved parameter
    /// set: group spacing (`tCCD_L/S`, `tRRD_L/S`) and the per-bank
    /// refresh lockout. Fields the family leaves at `0` inherit the
    /// bin's values, so the `ddr3` family is an exact no-op on every
    /// DDR3 bin. The burst length is *not* patched — each family's
    /// default bin already carries the matching `tBL`, and explicit
    /// `tbl` overrides in a timing spec must win.
    pub fn apply_to(&self, mut t: TimingParams) -> TimingParams {
        if self.tccd_l > 0 {
            t.tccd_l = self.tccd_l;
        }
        if self.tccd_s > 0 {
            t.tccd_s = self.tccd_s;
        }
        if self.trrd_l > 0 {
            t.trrd_l = self.trrd_l;
        }
        if self.trrd_s > 0 {
            t.trrd_s = self.trrd_s;
        }
        if self.trfcpb > 0 {
            t.trfcpb = self.trfcpb;
        }
        t
    }

    /// The timing spec a family-default run resolves to.
    pub fn default_timing_spec(&self) -> crate::spec::TimingSpec {
        crate::spec::TimingSpec::for_bin(self.default_bin)
    }

    /// Geometry one-liner for `cc-sim --list-families`.
    pub fn geometry_line(&self) -> String {
        let ch = if self.pseudo_channels > 1 {
            format!("{}ch x {}pc", self.channels, self.pseudo_channels)
        } else {
            format!("{}ch", self.channels)
        };
        format!(
            "{} group(s) x {} banks, {}, {} rows x {} cols, BL{}, {} refresh, bin {}",
            self.bank_groups,
            self.banks,
            ch,
            self.rows,
            self.columns,
            self.burst,
            self.refresh,
            self.default_bin.name(),
        )
    }

    /// Structural validation: geometry coherence plus group-spacing
    /// coherence against the family's default bin.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`FamilyError`].
    pub fn validate(&self) -> Result<(), FamilyError> {
        if self.bank_groups == 0 {
            return Err(FamilyError::Geometry {
                message: "bank_groups must be non-zero".into(),
            });
        }
        if self.banks == 0 || !self.banks.is_multiple_of(self.bank_groups) {
            return Err(FamilyError::Geometry {
                message: format!(
                    "banks ({}) must be a non-zero multiple of bank_groups ({})",
                    self.banks, self.bank_groups
                ),
            });
        }
        if self.refresh == RefreshGranularity::PerBank && !self.per_bank_capable {
            return Err(FamilyError::PerBankRefreshUnsupported {
                family: self.name.clone(),
            });
        }
        if self.retention_ms <= 0.0 {
            return Err(FamilyError::BadValue {
                key: "retention".into(),
                message: "retention window must be positive".into(),
            });
        }
        let bin = self.default_bin.timing();
        let eff = |v: u32, inherit: u32| if v > 0 { v } else { inherit };
        let (ccd_l, ccd_s) = (eff(self.tccd_l, bin.tccd), eff(self.tccd_s, bin.tccd));
        if ccd_l < ccd_s {
            return Err(FamilyError::IncoherentGroupSpacing {
                which: "tCCD",
                long: ccd_l,
                short: ccd_s,
            });
        }
        let (rrd_l, rrd_s) = (eff(self.trrd_l, bin.trrd), eff(self.trrd_s, bin.trrd));
        if rrd_l < rrd_s {
            return Err(FamilyError::IncoherentGroupSpacing {
                which: "tRRD",
                long: rrd_l,
                short: rrd_s,
            });
        }
        self.organization()
            .validate()
            .map_err(|message| FamilyError::Geometry { message })?;
        Ok(())
    }
}

/// One registry entry: the base description plus its listing metadata.
#[derive(Debug, Clone)]
struct FamilyEntry {
    describe: String,
    aliases: Vec<String>,
    base: FamilyParams,
}

/// The device-family registry, mirroring the mechanism registry: a
/// deterministic, name-addressable table of [`FamilyParams`] that
/// [`FamilySpec`]s resolve against. [`FamilyRegistry::builtin`]
/// preloads the four standard targets; custom families can be added
/// with [`FamilyRegistry::register`] (or globally with
/// [`register_family`]).
#[derive(Debug, Clone)]
pub struct FamilyRegistry {
    entries: Vec<FamilyEntry>,
}

impl FamilyRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// A registry preloaded with the built-in families: the paper's DDR3
    /// device, a DDR4-2400-style device (4 bank groups), an
    /// LPDDR4x-style device (long `tRCD`, per-bank refresh) and an
    /// HBM2-style stack (8 channels × 2 pseudo-channels, small rows).
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register(
            FamilyParams {
                name: "ddr3".into(),
                bank_groups: 1,
                banks: 8,
                ranks: 1,
                channels: 1,
                pseudo_channels: 1,
                rows: 65_536,
                columns: 128,
                burst: 8,
                refresh: RefreshGranularity::AllBank,
                per_bank_capable: false,
                retention_ms: 64.0,
                default_bin: SpeedBin::Ddr3_1600,
                tccd_l: 0,
                tccd_s: 0,
                trrd_l: 0,
                trrd_s: 0,
                trfcpb: 0,
            },
            "the paper's Table 1 DDR3 device: ungrouped, all-bank refresh",
            &["ddr3-1600"],
        );
        r.register(
            FamilyParams {
                name: "ddr4".into(),
                bank_groups: 4,
                banks: 16,
                ranks: 1,
                channels: 1,
                pseudo_channels: 1,
                rows: 65_536,
                columns: 128,
                burst: 8,
                refresh: RefreshGranularity::AllBank,
                per_bank_capable: false,
                retention_ms: 64.0,
                default_bin: SpeedBin::Ddr4_2400,
                tccd_l: 6,
                tccd_s: 4,
                trrd_l: 8,
                trrd_s: 6,
                trfcpb: 0,
            },
            "DDR4-2400-style: 4 bank groups with long/short column and activate spacing",
            &["ddr4-2400"],
        );
        r.register(
            FamilyParams {
                name: "lpddr4x".into(),
                bank_groups: 1,
                banks: 8,
                ranks: 1,
                channels: 2,
                pseudo_channels: 1,
                rows: 65_536,
                columns: 32,
                burst: 16,
                refresh: RefreshGranularity::PerBank,
                per_bank_capable: true,
                retention_ms: 32.0,
                default_bin: SpeedBin::Lpddr4x_3200,
                tccd_l: 0,
                tccd_s: 0,
                trrd_l: 0,
                trrd_s: 0,
                trfcpb: 224,
            },
            "LPDDR4x-style: long tRCD, 2 KB rows, per-bank refresh (tRFCpb)",
            &["lpddr4x-3200"],
        );
        r.register(
            FamilyParams {
                name: "hbm2".into(),
                bank_groups: 4,
                banks: 16,
                ranks: 1,
                channels: 8,
                pseudo_channels: 2,
                rows: 16_384,
                columns: 32,
                burst: 4,
                refresh: RefreshGranularity::AllBank,
                per_bank_capable: true,
                retention_ms: 32.0,
                default_bin: SpeedBin::Hbm2_1000,
                tccd_l: 4,
                tccd_s: 2,
                trrd_l: 6,
                trrd_s: 4,
                trfcpb: 160,
            },
            "HBM2-style stack: 8 channels x 2 pseudo-channels, small rows, 4 bank groups",
            &["hbm2-1000"],
        );
        r
    }

    /// Registers (or replaces) a family under `base.name`, with listing
    /// description and alias names.
    ///
    /// # Panics
    ///
    /// Panics if the name or an alias is not a valid token.
    pub fn register(&mut self, base: FamilyParams, describe: &str, aliases: &[&str]) {
        assert!(is_token(&base.name), "invalid family name {:?}", base.name);
        for a in aliases {
            assert!(is_token(a), "invalid family alias {a:?}");
        }
        let entry = FamilyEntry {
            describe: describe.to_string(),
            aliases: aliases.iter().map(|s| s.to_string()).collect(),
            base,
        };
        match self
            .entries
            .iter_mut()
            .find(|e| e.base.name == entry.base.name)
        {
            Some(e) => *e = entry,
            None => self.entries.push(entry),
        }
    }

    /// The canonical family name for `name` (resolving aliases), if
    /// registered.
    pub fn canonicalize(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.base.name == name || e.aliases.iter().any(|a| a == name))
            .map(|e| e.base.name.as_str())
    }

    /// `(name, description, base params)` for every registered family,
    /// in registration order (drives `cc-sim --list-families`).
    pub fn list(&self) -> Vec<(String, String, FamilyParams)> {
        self.entries
            .iter()
            .map(|e| (e.base.name.clone(), e.describe.clone(), e.base.clone()))
            .collect()
    }

    /// Resolves a spec into validated [`FamilyParams`]: the registered
    /// base with each override applied, then checked by
    /// [`FamilyParams::validate`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`FamilyError`] for unknown families or keys,
    /// ill-shaped values, incoherent group spacing, unsupported per-bank
    /// refresh, or inconsistent geometry.
    pub fn resolve(&self, spec: &FamilySpec) -> Result<FamilyParams, FamilyError> {
        let Some(canonical) = self.canonicalize(spec.family()) else {
            return Err(FamilyError::UnknownFamily {
                name: spec.family().to_string(),
                known: self
                    .entries
                    .iter()
                    .map(|e| e.base.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        };
        let mut p = self
            .entries
            .iter()
            .find(|e| e.base.name == canonical)
            .expect("canonicalize returned an unregistered name")
            .base
            .clone();
        for (key, value) in spec.params() {
            let int = |v: &FamilyValue| -> Result<u32, FamilyError> {
                match v {
                    FamilyValue::Int(i) => Ok(*i),
                    FamilyValue::Token(t) => Err(FamilyError::BadValue {
                        key: key.clone(),
                        message: format!("expected an integer, got {t:?}"),
                    }),
                }
            };
            let small = |v: &FamilyValue| -> Result<u8, FamilyError> {
                let i = int(v)?;
                u8::try_from(i).map_err(|_| FamilyError::BadValue {
                    key: key.clone(),
                    message: format!("{i} does not fit in 8 bits"),
                })
            };
            match key.as_str() {
                "bank_groups" => p.bank_groups = small(value)?,
                "banks" => p.banks = small(value)?,
                "ranks" => p.ranks = small(value)?,
                "channels" => p.channels = small(value)?,
                "pseudo_channels" => p.pseudo_channels = small(value)?,
                "rows" => p.rows = int(value)?,
                "columns" => p.columns = int(value)?,
                "burst" => p.burst = int(value)?,
                "retention" => p.retention_ms = f64::from(int(value)?),
                "tccd_l" => p.tccd_l = int(value)?,
                "tccd_s" => p.tccd_s = int(value)?,
                "trrd_l" => p.trrd_l = int(value)?,
                "trrd_s" => p.trrd_s = int(value)?,
                "trfcpb" => p.trfcpb = int(value)?,
                "refresh" => {
                    p.refresh = match value {
                        FamilyValue::Token(t) if t == "all-bank" => RefreshGranularity::AllBank,
                        FamilyValue::Token(t) if t == "per-bank" => RefreshGranularity::PerBank,
                        other => {
                            return Err(FamilyError::BadValue {
                                key: key.clone(),
                                message: format!("expected all-bank or per-bank, got {other}"),
                            })
                        }
                    }
                }
                other => {
                    return Err(FamilyError::UnknownKey {
                        family: canonical.to_string(),
                        key: other.to_string(),
                        known: FAMILY_KEYS.join(", "),
                    })
                }
            }
        }
        p.validate()?;
        Ok(p)
    }
}

impl Default for FamilyRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

fn global() -> &'static RwLock<FamilyRegistry> {
    static GLOBAL: OnceLock<RwLock<FamilyRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(FamilyRegistry::builtin()))
}

/// Registers a family in the process-wide registry (replacing any prior
/// family of the same name).
pub fn register_family(base: FamilyParams, describe: &str, aliases: &[&str]) {
    global()
        .write()
        .expect("family registry poisoned")
        .register(base, describe, aliases);
}

/// Runs `f` with read access to the process-wide registry.
pub fn with_registry<R>(f: impl FnOnce(&FamilyRegistry) -> R) -> R {
    f(&global().read().expect("family registry poisoned"))
}

/// Resolves a spec against the process-wide registry.
///
/// # Errors
///
/// See [`FamilyRegistry::resolve`].
pub fn resolve(spec: &FamilySpec) -> Result<FamilyParams, FamilyError> {
    with_registry(|r| r.resolve(spec))
}

/// Validates a spec against the process-wide registry without keeping
/// the resolution.
///
/// # Errors
///
/// See [`FamilyRegistry::resolve`].
pub fn validate_spec(spec: &FamilySpec) -> Result<(), FamilyError> {
    resolve(spec).map(|_| ())
}

/// `(name, description, base params)` for every family in the
/// process-wide registry.
pub fn list_families() -> Vec<(String, String, FamilyParams)> {
    with_registry(FamilyRegistry::list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_paper_family() {
        let spec = FamilySpec::default();
        assert!(spec.is_default());
        assert_eq!(spec.to_string(), "ddr3");
        let p = resolve(&spec).unwrap();
        assert_eq!(p.organization(), Organization::paper(1));
        assert_eq!(p.refresh, RefreshGranularity::AllBank);
    }

    #[test]
    fn builtins_cover_the_four_standards() {
        let fams = list_families();
        let names: Vec<&str> = fams.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.len() >= 4, "{names:?}");
        for want in ["ddr3", "ddr4", "lpddr4x", "hbm2"] {
            assert!(names.contains(&want), "missing {want}");
        }
        for (name, describe, base) in &fams {
            assert!(!describe.is_empty(), "{name} has no description");
            base.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn ddr3_family_is_a_timing_no_op() {
        let p = resolve(&"ddr3".parse().unwrap()).unwrap();
        let t = TimingParams::ddr3_1600();
        assert_eq!(p.apply_to(t.clone()), t);
    }

    #[test]
    fn ddr4_family_stretches_same_group_spacing() {
        let p = resolve(&"ddr4".parse().unwrap()).unwrap();
        let t = p.apply_to(p.default_bin.timing());
        assert!(t.tccd_l > t.tccd_s, "{} vs {}", t.tccd_l, t.tccd_s);
        assert!(t.trrd_l > t.trrd_s);
        t.validate().unwrap();
    }

    #[test]
    fn aliases_canonicalize() {
        let spec: FamilySpec = "ddr4-2400".parse().unwrap();
        assert_eq!(resolve(&spec).unwrap().name, "ddr4");
        assert_eq!(
            with_registry(|r| r.canonicalize("hbm2-1000").map(str::to_string)),
            Some("hbm2".into())
        );
    }

    #[test]
    fn hbm2_multiplies_pseudo_channels() {
        let p = resolve(&"hbm2".parse().unwrap()).unwrap();
        assert_eq!(p.organization().channels, 16);
        assert_eq!(p.organization().bank_groups, 4);
    }

    #[test]
    fn typed_errors_reject_structural_nonsense() {
        assert!(matches!(
            resolve(&"ddr9".parse().unwrap()),
            Err(FamilyError::UnknownFamily { .. })
        ));
        assert!(matches!(
            resolve(&"ddr4(bogus=1)".parse().unwrap()),
            Err(FamilyError::UnknownKey { .. })
        ));
        assert!(matches!(
            resolve(&"ddr4(tccd_l=2)".parse().unwrap()),
            Err(FamilyError::IncoherentGroupSpacing { which: "tCCD", .. })
        ));
        assert!(matches!(
            resolve(&"ddr4(trrd_l=2)".parse().unwrap()),
            Err(FamilyError::IncoherentGroupSpacing { which: "tRRD", .. })
        ));
        assert!(matches!(
            resolve(&"ddr3(refresh=per-bank)".parse().unwrap()),
            Err(FamilyError::PerBankRefreshUnsupported { .. })
        ));
        assert!(matches!(
            resolve(&"ddr4(bank_groups=3)".parse().unwrap()),
            Err(FamilyError::Geometry { .. })
        ));
        assert!(matches!(
            resolve(&"ddr4(banks=300)".parse().unwrap()),
            Err(FamilyError::BadValue { .. })
        ));
        assert!(matches!(
            resolve(&"ddr4(refresh=sometimes)".parse().unwrap()),
            Err(FamilyError::BadValue { .. })
        ));
    }

    #[test]
    fn hbm2_accepts_per_bank_override() {
        let p = resolve(&"hbm2(refresh=per-bank)".parse().unwrap()).unwrap();
        assert_eq!(p.refresh, RefreshGranularity::PerBank);
    }

    #[test]
    fn spec_round_trips_and_normalizes() {
        for (src, norm) in [
            ("ddr3", "ddr3"),
            ("lpddr4x()", "lpddr4x"),
            (
                "  hbm2 ( channels = 4 , refresh = per-bank )  ",
                "hbm2(channels=4,refresh=per-bank)",
            ),
        ] {
            let spec: FamilySpec = src.parse().unwrap();
            assert_eq!(spec.to_string(), norm);
            let again: FamilySpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "ddr4(",
            "ddr4)x",
            "ddr4(banks)",
            "ddr4(banks=8,banks=16)",
            "ddr4(=1)",
            "4ddr",
            "ddr4(k=)",
            "ddr4(refresh=per bank)",
        ] {
            assert!(bad.parse::<FamilySpec>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn structural_is_default() {
        assert!("ddr3()".parse::<FamilySpec>().unwrap().is_default());
        assert!("ddr3(banks=8)".parse::<FamilySpec>().unwrap().is_default());
        assert!(!"ddr3(banks=16)".parse::<FamilySpec>().unwrap().is_default());
        assert!(!"ddr4".parse::<FamilySpec>().unwrap().is_default());
        assert!(!"no-such".parse::<FamilySpec>().unwrap().is_default());
    }

    #[test]
    fn geometry_line_mentions_the_structure() {
        let p = resolve(&"hbm2".parse().unwrap()).unwrap();
        let line = p.geometry_line();
        assert!(line.contains("8ch x 2pc"), "{line}");
        assert!(line.contains("4 group(s)"), "{line}");
        let lp = resolve(&"lpddr4x".parse().unwrap()).unwrap();
        assert!(
            lp.geometry_line().contains("per-bank"),
            "{}",
            lp.geometry_line()
        );
    }
}
