//! Per-rank state: banks plus rank-scoped timing constraints.

use std::collections::VecDeque;

use crate::bank::Bank;
use crate::command::RowId;
use crate::config::DramConfig;
use crate::family::RefreshGranularity;
use crate::refresh::RefreshState;
use crate::timing::{ActTimings, TimingParams};
use crate::BusCycle;

/// One rank: a set of banks operated in lockstep on the shared buses.
///
/// Enforces the rank-scoped constraints, device-family aware:
///
/// * `tRRD_S`/`tRRD_L` — minimum gap between ACTs to different banks
///   (cross-group vs same-group; identical when the family has one
///   bank group, which reduces to plain DDR3 `tRRD`);
/// * `tFAW` — at most four ACTs in any `tFAW` window;
/// * `tCCD_S`/`tCCD_L` — column command spacing (cross/same group);
/// * read/write bus turnaround (`tWTR` and the `tCL`/`tCWL` gap);
/// * `tRFC` — all-bank refresh lockout, or `tRFCpb` per-bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Banks per bank group (`banks` when ungrouped).
    banks_per_group: u8,
    /// Rows per bank (clamps the refresh schedule's reported row ranges:
    /// the bin count is timing-derived, so shrunk test organizations have
    /// more bins than rows).
    rows: u32,
    /// Earliest next ACT to any bank (cross-group tRRD_S, tFAW).
    next_act: BusCycle,
    /// Earliest next RD command (cross-group tCCD_S, WR→RD turnaround).
    next_rd: BusCycle,
    /// Earliest next WR command (cross-group tCCD_S, RD→WR turnaround).
    next_wr: BusCycle,
    /// Per-group earliest next ACT (same-group tRRD_L), indexed by group.
    next_act_same: Vec<BusCycle>,
    /// Per-group earliest next RD (same-group tCCD_L).
    next_rd_same: Vec<BusCycle>,
    /// Per-group earliest next WR (same-group tCCD_L).
    next_wr_same: Vec<BusCycle>,
    /// Issue times of the last four ACTs (tFAW sliding window).
    act_window: VecDeque<BusCycle>,
    /// True when refresh is per-bank (`REFpb`).
    per_bank_refresh: bool,
    /// Refresh rotation bookkeeping: one schedule for the whole rank in
    /// all-bank mode, one per bank (phase-staggered) in per-bank mode.
    refresh: Vec<RefreshState>,
}

impl Rank {
    /// Creates a rank for the given configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        let trefi = BusCycle::from(cfg.timing.trefi);
        let bins = cfg.refresh_bins();
        let rows_per_ref = cfg.rows_per_ref();
        let banks = cfg.org.banks;
        let groups = usize::from(cfg.org.bank_groups.max(1));
        let per_bank_refresh = cfg.refresh == RefreshGranularity::PerBank;
        let refresh = if per_bank_refresh {
            // Stagger each bank's phase across the tREFI window so the
            // aggregate REFpb cadence is banks/tREFI (LPDDR4 tREFIpb)
            // while each bank keeps the full tREFI period.
            (0..banks)
                .map(|b| {
                    let due = trefi * (BusCycle::from(b) + 1) / BusCycle::from(banks);
                    RefreshState::new(bins, rows_per_ref, trefi).with_first_due(due.max(1))
                })
                .collect()
        } else {
            vec![RefreshState::new(bins, rows_per_ref, trefi)]
        };
        Self {
            banks: (0..banks).map(|_| Bank::new()).collect(),
            banks_per_group: cfg.org.banks_per_group().max(1),
            rows: cfg.org.rows,
            next_act: 0,
            next_rd: 0,
            next_wr: 0,
            next_act_same: vec![0; groups],
            next_rd_same: vec![0; groups],
            next_wr_same: vec![0; groups],
            act_window: VecDeque::with_capacity(4),
            per_bank_refresh,
            refresh,
        }
    }

    /// The bank group `bank` belongs to.
    fn group_of(&self, bank: u8) -> usize {
        usize::from(bank / self.banks_per_group).min(self.next_act_same.len().saturating_sub(1))
    }

    /// Immutable access to a bank.
    pub fn bank(&self, bank: u8) -> &Bank {
        &self.banks[bank as usize]
    }

    /// Mutable access to a bank.
    pub fn bank_mut(&mut self, bank: u8) -> &mut Bank {
        &mut self.banks[bank as usize]
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// True if every bank is precharged.
    pub fn all_banks_precharged(&self) -> bool {
        self.banks.iter().all(Bank::is_precharged)
    }

    /// True when this rank refreshes one bank at a time (`REFpb`).
    pub fn per_bank_refresh(&self) -> bool {
        self.per_bank_refresh
    }

    /// Earliest cycle an ACT may issue to `bank`, combining bank- and
    /// rank-scoped constraints.
    pub fn earliest_act(&self, bank: u8, now: BusCycle, t: &TimingParams) -> BusCycle {
        let mut at = self.banks[bank as usize]
            .earliest_act(now)
            .max(self.next_act)
            .max(self.next_act_same[self.group_of(bank)]);
        if self.act_window.len() == 4 {
            // A fifth ACT must wait for the oldest to leave the window.
            at = at.max(self.act_window[0] + BusCycle::from(t.tfaw));
        }
        at
    }

    /// Earliest cycle a RD may issue to `bank`.
    pub fn earliest_rd(&self, bank: u8, now: BusCycle) -> BusCycle {
        self.banks[bank as usize]
            .earliest_rd(now)
            .max(self.next_rd)
            .max(self.next_rd_same[self.group_of(bank)])
    }

    /// Earliest cycle a WR may issue to `bank`.
    pub fn earliest_wr(&self, bank: u8, now: BusCycle) -> BusCycle {
        self.banks[bank as usize]
            .earliest_wr(now)
            .max(self.next_wr)
            .max(self.next_wr_same[self.group_of(bank)])
    }

    /// Earliest cycle a REF may issue (requires the refresh to be due is
    /// the *controller's* policy; this reports only timing legality). In
    /// per-bank mode only the target bank gates the command.
    pub fn earliest_ref(&self, now: BusCycle) -> BusCycle {
        // REF is gated by the covered banks being able to "activate"
        // (i.e. out of tRP / tRFC lockout); bank next_act registers
        // encode exactly that.
        if self.per_bank_refresh {
            let target = self.refresh_target().unwrap_or(0);
            return self.banks[target as usize].earliest_act(now);
        }
        self.banks
            .iter()
            .map(|b| b.earliest_act(now))
            .max()
            .unwrap_or(now)
    }

    /// Applies an ACT.
    pub fn issue_act(
        &mut self,
        bank: u8,
        now: BusCycle,
        act: ActTimings,
        t: &TimingParams,
        row: RowId,
    ) {
        self.banks[bank as usize].issue_act(now, act, t, row);
        self.next_act = self.next_act.max(now + BusCycle::from(t.trrd_s));
        let g = self.group_of(bank);
        self.next_act_same[g] = self.next_act_same[g].max(now + BusCycle::from(t.trrd_l));
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(now);
    }

    /// Applies a RD; updates rank-level column/bus constraints.
    pub fn issue_rd(
        &mut self,
        bank: u8,
        now: BusCycle,
        t: &TimingParams,
        auto_pre: bool,
    ) -> Option<(RowId, BusCycle)> {
        let closed = self.banks[bank as usize].issue_rd(now, t, auto_pre);
        self.next_rd = self.next_rd.max(now + BusCycle::from(t.tccd_s));
        let g = self.group_of(bank);
        self.next_rd_same[g] = self.next_rd_same[g].max(now + BusCycle::from(t.tccd_l));
        // RD→WR: write data may not collide with the read burst;
        // WR issues no earlier than tCL + tBL + 2 − tCWL after the RD.
        let turnaround = BusCycle::from(t.tcl + t.tbl + 2).saturating_sub(BusCycle::from(t.tcwl));
        self.next_wr = self.next_wr.max(now + turnaround);
        closed
    }

    /// Applies a WR; updates rank-level column/bus constraints.
    pub fn issue_wr(
        &mut self,
        bank: u8,
        now: BusCycle,
        t: &TimingParams,
        auto_pre: bool,
    ) -> Option<(RowId, BusCycle)> {
        let closed = self.banks[bank as usize].issue_wr(now, t, auto_pre);
        self.next_wr = self.next_wr.max(now + BusCycle::from(t.tccd_s));
        let g = self.group_of(bank);
        self.next_wr_same[g] = self.next_wr_same[g].max(now + BusCycle::from(t.tccd_l));
        // WR→RD: tWTR after the end of write data.
        self.next_rd = self
            .next_rd
            .max(now + BusCycle::from(t.tcwl + t.tbl + t.twtr));
        closed
    }

    /// Applies a REF at `now`. Returns the row range (first row, count)
    /// the REF replenished plus the bank it covered (`None` = every bank
    /// of the rank), so the controller can inform charge-aware
    /// mechanisms.
    ///
    /// All-bank mode locks every bank out for `tRFC`; per-bank mode
    /// locks only the schedule's target bank out, for `tRFCpb`.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if a covered bank still has an open row.
    pub fn issue_ref(&mut self, now: BusCycle, t: &TimingParams) -> (RowId, u32, Option<u8>) {
        let (schedule, covered) = if self.per_bank_refresh {
            let target = self.refresh_target().unwrap_or(0);
            self.banks[target as usize].apply_refresh_lockout(now, t.trfcpb);
            (target as usize, Some(target))
        } else {
            debug_assert!(self.all_banks_precharged());
            for b in &mut self.banks {
                b.apply_refresh(now, t);
            }
            (0, None)
        };
        let (first, count) = self.refresh[schedule].next_bin_rows();
        self.refresh[schedule].apply_ref(now);
        // The schedule's bin count is timing-derived, so organizations
        // with fewer rows than bins (shrunk test configs) have bins past
        // the last physical row: report only rows that exist.
        let end = (first + count).min(self.rows);
        (first.min(self.rows), end.saturating_sub(first), covered)
    }

    /// Cycle at which the next REF becomes due (the earliest schedule in
    /// per-bank mode).
    pub fn refresh_due(&self) -> BusCycle {
        self.refresh
            .iter()
            .map(RefreshState::due_at)
            .min()
            .unwrap_or(BusCycle::MAX)
    }

    /// The bank the next `REFpb` will cover, or `None` in all-bank mode.
    /// Ties resolve to the lowest bank index, deterministically.
    pub fn refresh_target(&self) -> Option<u8> {
        if !self.per_bank_refresh {
            return None;
        }
        self.refresh
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.due_at())
            .map(|(b, _)| b as u8)
    }

    /// Age of `row`'s last refresh at `now`, as seen by `bank` (all
    /// banks share one schedule in all-bank mode).
    pub fn refresh_age(&self, bank: u8, row: RowId, now: BusCycle) -> BusCycle {
        let schedule = if self.per_bank_refresh {
            bank as usize
        } else {
            0
        };
        self.refresh[schedule].refresh_age(row, now)
    }

    /// Total REF commands issued to this rank (summed over banks in
    /// per-bank mode).
    pub fn refs_issued(&self) -> u64 {
        self.refresh.iter().map(RefreshState::issued).sum()
    }

    /// Serializes the rank's mutable state (checkpoint support).
    /// Configuration-derived fields (bank count, groups, refresh mode)
    /// are reconstructed, not serialized.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        use fasthash::codec::*;
        put_usize(out, self.banks.len());
        for b in &self.banks {
            b.save_state(out);
        }
        for v in [self.next_act, self.next_rd, self.next_wr] {
            put_u64(out, v);
        }
        for gates in [&self.next_act_same, &self.next_rd_same, &self.next_wr_same] {
            put_usize(out, gates.len());
            for &g in gates {
                put_u64(out, g);
            }
        }
        put_usize(out, self.act_window.len());
        for &a in &self.act_window {
            put_u64(out, a);
        }
        put_usize(out, self.refresh.len());
        for r in &self.refresh {
            r.save_state(out);
        }
    }

    /// Restores state saved by [`Self::save_state`] into a rank built with
    /// the same configuration.
    pub fn load_state(&mut self, input: &mut &[u8]) -> Result<(), String> {
        use fasthash::codec::*;
        let nbanks = take_len(input, 8, "rank banks")?;
        if nbanks != self.banks.len() {
            return Err(format!(
                "bank count mismatch: checkpoint has {nbanks}, rank has {}",
                self.banks.len()
            ));
        }
        for b in &mut self.banks {
            b.load_state(input)?;
        }
        self.next_act = take_u64(input, "rank next_act")?;
        self.next_rd = take_u64(input, "rank next_rd")?;
        self.next_wr = take_u64(input, "rank next_wr")?;
        for (gates, what) in [
            (&mut self.next_act_same, "act group gates"),
            (&mut self.next_rd_same, "rd group gates"),
            (&mut self.next_wr_same, "wr group gates"),
        ] {
            let n = take_len(input, 8, what)?;
            if n != gates.len() {
                return Err(format!("group count mismatch reading {what}"));
            }
            for g in gates.iter_mut() {
                *g = take_u64(input, what)?;
            }
        }
        let nacts = take_len(input, 8, "act window")?;
        if nacts > 4 {
            return Err(format!("implausible act window length {nacts}"));
        }
        self.act_window.clear();
        for _ in 0..nacts {
            self.act_window
                .push_back(take_u64(input, "act window entry")?);
        }
        let nref = take_len(input, 8, "refresh schedules")?;
        if nref != self.refresh.len() {
            return Err(format!(
                "refresh schedule count mismatch: checkpoint has {nref}, rank has {}",
                self.refresh.len()
            ));
        }
        for r in &mut self.refresh {
            r.load_state(input)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn setup() -> (Rank, TimingParams) {
        let cfg = DramConfig::ddr3_1600_paper();
        (Rank::new(&cfg), cfg.timing)
    }

    /// A DDR4-like grouped configuration: 4 groups of 4 banks with
    /// stretched same-group spacing.
    fn grouped() -> (Rank, TimingParams) {
        let mut cfg = DramConfig::ddr3_1600_paper();
        cfg.org.banks = 16;
        cfg.org.bank_groups = 4;
        cfg.timing.tccd_l = 6;
        cfg.timing.tccd_s = 4;
        cfg.timing.trrd_l = 8;
        cfg.timing.trrd_s = 5;
        cfg.validate().unwrap();
        (Rank::new(&cfg), cfg.timing)
    }

    fn per_bank() -> (Rank, TimingParams) {
        let mut cfg = DramConfig::ddr3_1600_paper();
        cfg.refresh = RefreshGranularity::PerBank;
        cfg.timing.trfcpb = 104;
        cfg.validate().unwrap();
        (Rank::new(&cfg), cfg.timing)
    }

    #[test]
    fn trrd_spaces_activates_across_banks() {
        let (mut r, t) = setup();
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        assert_eq!(r.earliest_act(1, 0, &t), u64::from(t.trrd));
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let (mut r, t) = setup();
        let mut now = 0;
        for b in 0..4 {
            now = r.earliest_act(b, now, &t);
            r.issue_act(b, now, t.act_timings(), &t, 1);
        }
        // Fourth ACT happened at 3 × tRRD; the fifth must wait for tFAW
        // after the first.
        let fifth = r.earliest_act(4, now, &t);
        assert_eq!(fifth, u64::from(t.tfaw));
        assert!(fifth > now + u64::from(t.trrd) - 1);
    }

    #[test]
    fn tccd_spaces_reads() {
        let (mut r, t) = setup();
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        let rd_at = r.earliest_rd(0, 0);
        r.issue_rd(0, rd_at, &t, false);
        assert_eq!(r.earliest_rd(0, 0), rd_at + u64::from(t.tccd));
    }

    #[test]
    fn write_to_read_turnaround() {
        let (mut r, t) = setup();
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        let wr_at = r.earliest_wr(0, 0);
        r.issue_wr(0, wr_at, &t, false);
        assert_eq!(
            r.earliest_rd(0, 0),
            wr_at + u64::from(t.tcwl + t.tbl + t.twtr)
        );
    }

    #[test]
    fn read_to_write_turnaround() {
        let (mut r, t) = setup();
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        let rd_at = r.earliest_rd(0, 0);
        r.issue_rd(0, rd_at, &t, false);
        let exp = rd_at + u64::from(t.tcl + t.tbl + 2) - u64::from(t.tcwl);
        assert_eq!(r.earliest_wr(0, 0), exp);
    }

    #[test]
    fn grouped_activates_pay_long_spacing_within_a_group() {
        let (mut r, t) = grouped();
        // Banks 0 and 1 share group 0; bank 4 is in group 1.
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        assert_eq!(r.earliest_act(1, 0, &t), u64::from(t.trrd_l));
        assert_eq!(r.earliest_act(4, 0, &t), u64::from(t.trrd_s));
    }

    #[test]
    fn grouped_columns_pay_long_spacing_within_a_group() {
        let (mut r, t) = grouped();
        for b in [0u8, 1, 4] {
            let at = r.earliest_act(b, 0, &t);
            r.issue_act(b, at, t.act_timings(), &t, 1);
        }
        let rd_at = r.earliest_rd(0, 100);
        r.issue_rd(0, rd_at, &t, false);
        // Same group (bank 1): tCCD_L. Other group (bank 4): tCCD_S.
        assert_eq!(r.earliest_rd(1, 0), rd_at + u64::from(t.tccd_l));
        assert_eq!(r.earliest_rd(4, 0), rd_at + u64::from(t.tccd_s));
    }

    #[test]
    fn single_group_reduces_to_ddr3_spacing() {
        let (mut a, t) = setup();
        let (mut b, _) = setup();
        // Identical command streams must produce identical state when
        // the group timings equal the base timings.
        for (bank, at) in [(0u8, 0u64), (3, 20), (7, 40)] {
            a.issue_act(bank, at, t.act_timings(), &t, 1);
            b.issue_act(bank, at, t.act_timings(), &t, 1);
        }
        assert_eq!(a, b);
        assert_eq!(a.earliest_act(5, 0, &t), b.earliest_act(5, 0, &t));
    }

    #[test]
    fn refresh_locks_out_all_banks() {
        let (mut r, t) = setup();
        r.issue_ref(100, &t);
        for b in 0..8 {
            assert_eq!(r.earliest_act(b, 0, &t), 100 + u64::from(t.trfc));
        }
    }

    #[test]
    fn per_bank_refresh_locks_only_the_target() {
        let (mut r, t) = per_bank();
        let target = r.refresh_target().expect("per-bank mode has a target");
        let (_, _, covered) = r.issue_ref(100, &t);
        assert_eq!(covered, Some(target));
        assert_eq!(
            r.earliest_act(target, 0, &t),
            100 + u64::from(t.trfcpb),
            "target bank locked for tRFCpb"
        );
        for b in 0..8u8 {
            if b != target {
                assert_eq!(r.earliest_act(b, 0, &t), 0, "bank {b} must stay open");
            }
        }
    }

    #[test]
    fn per_bank_schedules_are_staggered_and_rotate() {
        let (mut r, t) = per_bank();
        let first_due = r.refresh_due();
        assert!(first_due < u64::from(t.trefi), "stagger spreads REFpb out");
        let first = r.refresh_target().unwrap();
        r.issue_ref(first_due, &t);
        let second = r.refresh_target().unwrap();
        assert_ne!(first, second, "rotation moves to the next bank");
        // Aggregate cadence: 8 banks → 8 REFpb per tREFI window.
        let mut now = first_due;
        for _ in 0..7 {
            now = r.refresh_due();
            r.issue_ref(now, &t);
        }
        assert!(now <= u64::from(t.trefi));
        assert_eq!(r.refs_issued(), 8);
    }

    #[test]
    fn per_bank_refresh_age_is_tracked_per_bank() {
        let (mut r, t) = per_bank();
        let target = r.refresh_target().unwrap();
        let (first, count, _) = r.issue_ref(1000, &t);
        assert!(count > 0);
        assert_eq!(r.refresh_age(target, first, 1000), 0);
        let other = (target + 1) % 8;
        assert!(
            r.refresh_age(other, first, 1000) > 0,
            "other banks unaffected"
        );
    }

    #[test]
    fn refresh_reports_only_physical_rows_on_shrunk_organizations() {
        // 1024 rows but a timing-derived 8192-bin schedule: most bins lie
        // past the last physical row and must report zero rows.
        let mut cfg = DramConfig::ddr3_1600_paper();
        cfg.org.rows = 1024;
        let t = cfg.timing.clone();
        let mut r = Rank::new(&cfg);
        let mut reported = 0u32;
        for i in 0..200u64 {
            let (first, count, _) = r.issue_ref((i + 1) * u64::from(t.trefi), &t);
            assert!(
                u64::from(first) + u64::from(count) <= 1024,
                "REF reported phantom rows {first}+{count}"
            );
            reported += count;
        }
        // The permuted schedule hits some real bins within 200 REFs.
        assert!(reported > 0, "no real rows reported at all");
    }

    #[test]
    fn refresh_due_tracks_schedule() {
        let (mut r, t) = setup();
        let due = r.refresh_due();
        assert_eq!(due, u64::from(t.trefi));
        r.issue_ref(due, &t);
        assert_eq!(r.refresh_due(), 2 * u64::from(t.trefi));
    }
}
