//! Per-rank state: banks plus rank-scoped timing constraints.

use std::collections::VecDeque;

use crate::bank::Bank;
use crate::command::RowId;
use crate::config::DramConfig;
use crate::refresh::RefreshState;
use crate::timing::{ActTimings, TimingParams};
use crate::BusCycle;

/// One rank: a set of banks operated in lockstep on the shared buses.
///
/// Enforces the rank-scoped DDR3 constraints:
///
/// * `tRRD` — minimum gap between ACTs to different banks;
/// * `tFAW` — at most four ACTs in any `tFAW` window;
/// * `tCCD` — column command spacing;
/// * read/write bus turnaround (`tWTR` and the `tCL`/`tCWL` gap);
/// * `tRFC` — refresh lockout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Rows per bank (clamps the refresh schedule's reported row ranges:
    /// the bin count is timing-derived, so shrunk test organizations have
    /// more bins than rows).
    rows: u32,
    /// Earliest next ACT to any bank (tRRD, tFAW).
    next_act: BusCycle,
    /// Earliest next RD command (tCCD, WR→RD turnaround).
    next_rd: BusCycle,
    /// Earliest next WR command (tCCD, RD→WR turnaround).
    next_wr: BusCycle,
    /// Issue times of the last four ACTs (tFAW sliding window).
    act_window: VecDeque<BusCycle>,
    /// Refresh rotation bookkeeping.
    refresh: RefreshState,
}

impl Rank {
    /// Creates a rank for the given configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        Self {
            banks: (0..cfg.org.banks).map(|_| Bank::new()).collect(),
            rows: cfg.org.rows,
            next_act: 0,
            next_rd: 0,
            next_wr: 0,
            act_window: VecDeque::with_capacity(4),
            refresh: RefreshState::new(
                cfg.refresh_bins(),
                cfg.rows_per_ref(),
                BusCycle::from(cfg.timing.trefi),
            ),
        }
    }

    /// Immutable access to a bank.
    pub fn bank(&self, bank: u8) -> &Bank {
        &self.banks[bank as usize]
    }

    /// Mutable access to a bank.
    pub fn bank_mut(&mut self, bank: u8) -> &mut Bank {
        &mut self.banks[bank as usize]
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// True if every bank is precharged.
    pub fn all_banks_precharged(&self) -> bool {
        self.banks.iter().all(Bank::is_precharged)
    }

    /// Earliest cycle an ACT may issue to `bank`, combining bank- and
    /// rank-scoped constraints.
    pub fn earliest_act(&self, bank: u8, now: BusCycle, t: &TimingParams) -> BusCycle {
        let mut at = self.banks[bank as usize]
            .earliest_act(now)
            .max(self.next_act);
        if self.act_window.len() == 4 {
            // A fifth ACT must wait for the oldest to leave the window.
            at = at.max(self.act_window[0] + BusCycle::from(t.tfaw));
        }
        at
    }

    /// Earliest cycle a RD may issue to `bank`.
    pub fn earliest_rd(&self, bank: u8, now: BusCycle) -> BusCycle {
        self.banks[bank as usize].earliest_rd(now).max(self.next_rd)
    }

    /// Earliest cycle a WR may issue to `bank`.
    pub fn earliest_wr(&self, bank: u8, now: BusCycle) -> BusCycle {
        self.banks[bank as usize].earliest_wr(now).max(self.next_wr)
    }

    /// Earliest cycle a REF may issue (requires the refresh to be due is
    /// the *controller's* policy; this reports only timing legality).
    pub fn earliest_ref(&self, now: BusCycle) -> BusCycle {
        // REF is gated by every bank being able to "activate" (i.e. out of
        // tRP / tRFC lockout); bank next_act registers encode exactly that.
        self.banks
            .iter()
            .map(|b| b.earliest_act(now))
            .max()
            .unwrap_or(now)
    }

    /// Applies an ACT.
    pub fn issue_act(
        &mut self,
        bank: u8,
        now: BusCycle,
        act: ActTimings,
        t: &TimingParams,
        row: RowId,
    ) {
        self.banks[bank as usize].issue_act(now, act, t, row);
        self.next_act = self.next_act.max(now + BusCycle::from(t.trrd));
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(now);
    }

    /// Applies a RD; updates rank-level column/bus constraints.
    pub fn issue_rd(
        &mut self,
        bank: u8,
        now: BusCycle,
        t: &TimingParams,
        auto_pre: bool,
    ) -> Option<(RowId, BusCycle)> {
        let closed = self.banks[bank as usize].issue_rd(now, t, auto_pre);
        self.next_rd = self.next_rd.max(now + BusCycle::from(t.tccd));
        // RD→WR: write data may not collide with the read burst;
        // WR issues no earlier than tCL + tBL + 2 − tCWL after the RD.
        let turnaround = BusCycle::from(t.tcl + t.tbl + 2).saturating_sub(BusCycle::from(t.tcwl));
        self.next_wr = self.next_wr.max(now + turnaround);
        closed
    }

    /// Applies a WR; updates rank-level column/bus constraints.
    pub fn issue_wr(
        &mut self,
        bank: u8,
        now: BusCycle,
        t: &TimingParams,
        auto_pre: bool,
    ) -> Option<(RowId, BusCycle)> {
        let closed = self.banks[bank as usize].issue_wr(now, t, auto_pre);
        self.next_wr = self.next_wr.max(now + BusCycle::from(t.tccd));
        // WR→RD: tWTR after the end of write data.
        self.next_rd = self
            .next_rd
            .max(now + BusCycle::from(t.tcwl + t.tbl + t.twtr));
        closed
    }

    /// Applies a REF at `now`. Returns the row range (first row, count;
    /// per bank) the REF replenished, so the controller can inform
    /// charge-aware mechanisms.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if any bank still has an open row.
    pub fn issue_ref(&mut self, now: BusCycle, t: &TimingParams) -> (RowId, u32) {
        debug_assert!(self.all_banks_precharged());
        for b in &mut self.banks {
            b.apply_refresh(now, t);
        }
        let (first, count) = self.refresh.next_bin_rows();
        self.refresh.apply_ref(now);
        // The schedule's bin count is timing-derived, so organizations
        // with fewer rows than bins (shrunk test configs) have bins past
        // the last physical row: report only rows that exist.
        let end = (first + count).min(self.rows);
        (first.min(self.rows), end.saturating_sub(first))
    }

    /// Cycle at which the next REF becomes due.
    pub fn refresh_due(&self) -> BusCycle {
        self.refresh.due_at()
    }

    /// Age of `row`'s last refresh at `now`.
    pub fn refresh_age(&self, row: RowId, now: BusCycle) -> BusCycle {
        self.refresh.refresh_age(row, now)
    }

    /// Total REF commands issued to this rank.
    pub fn refs_issued(&self) -> u64 {
        self.refresh.issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn setup() -> (Rank, TimingParams) {
        let cfg = DramConfig::ddr3_1600_paper();
        (Rank::new(&cfg), cfg.timing)
    }

    #[test]
    fn trrd_spaces_activates_across_banks() {
        let (mut r, t) = setup();
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        assert_eq!(r.earliest_act(1, 0, &t), u64::from(t.trrd));
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let (mut r, t) = setup();
        let mut now = 0;
        for b in 0..4 {
            now = r.earliest_act(b, now, &t);
            r.issue_act(b, now, t.act_timings(), &t, 1);
        }
        // Fourth ACT happened at 3 × tRRD; the fifth must wait for tFAW
        // after the first.
        let fifth = r.earliest_act(4, now, &t);
        assert_eq!(fifth, u64::from(t.tfaw));
        assert!(fifth > now + u64::from(t.trrd) - 1);
    }

    #[test]
    fn tccd_spaces_reads() {
        let (mut r, t) = setup();
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        let rd_at = r.earliest_rd(0, 0);
        r.issue_rd(0, rd_at, &t, false);
        assert_eq!(r.earliest_rd(0, 0), rd_at + u64::from(t.tccd));
    }

    #[test]
    fn write_to_read_turnaround() {
        let (mut r, t) = setup();
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        let wr_at = r.earliest_wr(0, 0);
        r.issue_wr(0, wr_at, &t, false);
        assert_eq!(
            r.earliest_rd(0, 0),
            wr_at + u64::from(t.tcwl + t.tbl + t.twtr)
        );
    }

    #[test]
    fn read_to_write_turnaround() {
        let (mut r, t) = setup();
        r.issue_act(0, 0, t.act_timings(), &t, 1);
        let rd_at = r.earliest_rd(0, 0);
        r.issue_rd(0, rd_at, &t, false);
        let exp = rd_at + u64::from(t.tcl + t.tbl + 2) - u64::from(t.tcwl);
        assert_eq!(r.earliest_wr(0, 0), exp);
    }

    #[test]
    fn refresh_locks_out_all_banks() {
        let (mut r, t) = setup();
        r.issue_ref(100, &t);
        for b in 0..8 {
            assert_eq!(r.earliest_act(b, 0, &t), 100 + u64::from(t.trfc));
        }
    }

    #[test]
    fn refresh_reports_only_physical_rows_on_shrunk_organizations() {
        // 1024 rows but a timing-derived 8192-bin schedule: most bins lie
        // past the last physical row and must report zero rows.
        let mut cfg = DramConfig::ddr3_1600_paper();
        cfg.org.rows = 1024;
        let t = cfg.timing.clone();
        let mut r = Rank::new(&cfg);
        let mut reported = 0u32;
        for i in 0..200u64 {
            let (first, count) = r.issue_ref((i + 1) * u64::from(t.trefi), &t);
            assert!(
                u64::from(first) + u64::from(count) <= 1024,
                "REF reported phantom rows {first}+{count}"
            );
            reported += count;
        }
        // The permuted schedule hits some real bins within 200 REFs.
        assert!(reported > 0, "no real rows reported at all");
    }

    #[test]
    fn refresh_due_tracks_schedule() {
        let (mut r, t) = setup();
        let due = r.refresh_due();
        assert_eq!(due, u64::from(t.trefi));
        r.issue_ref(due, &t);
        assert_eq!(r.refresh_due(), 2 * u64::from(t.trefi));
    }
}
