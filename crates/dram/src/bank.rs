//! Per-bank state machine and timing registers.

use crate::command::RowId;
use crate::timing::{ActTimings, TimingParams};
use crate::BusCycle;

/// Row-buffer state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// No row open; the bank can accept `ACT`.
    Precharged,
    /// A row is open in the row buffer.
    Active {
        /// The open row.
        row: RowId,
    },
}

/// One DRAM bank: state machine plus "earliest next command" registers.
///
/// The registers encode the *bank-scoped* DDR3 constraints; rank- and
/// channel-scoped constraints (`tRRD`, `tFAW`, `tCCD`, bus turnaround,
/// `tRFC`) live in [`crate::rank::Rank`] and [`crate::channel::Channel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    state: BankState,
    /// Earliest cycle an `ACT` may issue (tRP, tRC, tRFC).
    next_act: BusCycle,
    /// Earliest cycle a `PRE` may issue (tRAS, tRTP, write recovery).
    next_pre: BusCycle,
    /// Earliest cycle a `RD` may issue (tRCD).
    next_rd: BusCycle,
    /// Earliest cycle a `WR` may issue (tRCD).
    next_wr: BusCycle,
    /// Issue cycle of the current activation.
    act_at: BusCycle,
    /// Effective `tRAS` of the current activation (possibly reduced).
    cur_tras: u32,
}

impl Bank {
    /// A freshly precharged bank with all constraints satisfied at cycle 0.
    pub fn new() -> Self {
        Self {
            state: BankState::Precharged,
            next_act: 0,
            next_pre: 0,
            next_rd: 0,
            next_wr: 0,
            act_at: 0,
            cur_tras: 0,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<RowId> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Precharged => None,
        }
    }

    /// True if the bank is precharged.
    pub fn is_precharged(&self) -> bool {
        matches!(self.state, BankState::Precharged)
    }

    /// Earliest cycle an `ACT` may issue, ignoring rank-level constraints.
    pub fn earliest_act(&self, now: BusCycle) -> BusCycle {
        self.next_act.max(now)
    }

    /// Earliest cycle a `PRE` may issue.
    pub fn earliest_pre(&self, now: BusCycle) -> BusCycle {
        self.next_pre.max(now)
    }

    /// Earliest cycle a `RD` may issue, ignoring rank-level constraints.
    pub fn earliest_rd(&self, now: BusCycle) -> BusCycle {
        self.next_rd.max(now)
    }

    /// Earliest cycle a `WR` may issue, ignoring rank-level constraints.
    pub fn earliest_wr(&self, now: BusCycle) -> BusCycle {
        self.next_wr.max(now)
    }

    /// Applies an `ACT` at `now` with the given effective timings.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not precharged (callers must check legality
    /// through the device's `earliest_issue`).
    pub fn issue_act(&mut self, now: BusCycle, act: ActTimings, t: &TimingParams, row: RowId) {
        assert!(self.is_precharged(), "ACT to an active bank");
        self.state = BankState::Active { row };
        self.act_at = now;
        self.cur_tras = act.tras;
        self.next_rd = now + BusCycle::from(act.trcd);
        self.next_wr = now + BusCycle::from(act.trcd);
        self.next_pre = now + BusCycle::from(act.tras);
        // Effective row-cycle time shrinks with a reduced tRAS: the next
        // ACT is gated by the (possibly earlier) precharge completing.
        let tras_cut = t.tras.saturating_sub(act.tras);
        let eff_trc = t.trc.saturating_sub(tras_cut).max(act.tras + t.trp);
        self.next_act = now + BusCycle::from(eff_trc);
    }

    /// Applies a `PRE` at `now`. Returns the row that was closed.
    ///
    /// # Panics
    ///
    /// Panics if the bank has no open row.
    pub fn issue_pre(&mut self, now: BusCycle, t: &TimingParams) -> RowId {
        let row = self.open_row().expect("PRE to a precharged bank");
        self.state = BankState::Precharged;
        self.next_act = self.next_act.max(now + BusCycle::from(t.trp));
        row
    }

    /// Applies a `RD` at `now`. With `auto_pre`, schedules the internal
    /// precharge and returns `(row, precharge_start_cycle)`.
    ///
    /// # Panics
    ///
    /// Panics if the bank has no open row.
    pub fn issue_rd(
        &mut self,
        now: BusCycle,
        t: &TimingParams,
        auto_pre: bool,
    ) -> Option<(RowId, BusCycle)> {
        let row = self.open_row().expect("RD to a precharged bank");
        if auto_pre {
            let pre_start =
                (now + BusCycle::from(t.trtp)).max(self.act_at + BusCycle::from(self.cur_tras));
            self.state = BankState::Precharged;
            self.next_act = self.next_act.max(pre_start + BusCycle::from(t.trp));
            Some((row, pre_start))
        } else {
            // A later explicit PRE must respect read-to-precharge.
            self.next_pre = self.next_pre.max(now + BusCycle::from(t.trtp));
            None
        }
    }

    /// Applies a `WR` at `now`. With `auto_pre`, schedules the internal
    /// precharge and returns `(row, precharge_start_cycle)`.
    ///
    /// # Panics
    ///
    /// Panics if the bank has no open row.
    pub fn issue_wr(
        &mut self,
        now: BusCycle,
        t: &TimingParams,
        auto_pre: bool,
    ) -> Option<(RowId, BusCycle)> {
        let row = self.open_row().expect("WR to a precharged bank");
        let recovery = now + BusCycle::from(t.tcwl + t.tbl + t.twr);
        if auto_pre {
            let pre_start = recovery.max(self.act_at + BusCycle::from(self.cur_tras));
            self.state = BankState::Precharged;
            self.next_act = self.next_act.max(pre_start + BusCycle::from(t.trp));
            Some((row, pre_start))
        } else {
            self.next_pre = self.next_pre.max(recovery);
            None
        }
    }

    /// Applies the effect of a rank-level `REF` completing at
    /// `now + tRFC`: the bank cannot activate until then.
    pub fn apply_refresh(&mut self, now: BusCycle, t: &TimingParams) {
        self.apply_refresh_lockout(now, t.trfc);
    }

    /// Applies a refresh lockout of `lockout` cycles starting at `now`:
    /// the bank cannot activate until it elapses. Used directly by
    /// per-bank refresh (`tRFCpb`) and via [`Self::apply_refresh`]
    /// (`tRFC`) by all-bank refresh.
    pub fn apply_refresh_lockout(&mut self, now: BusCycle, lockout: u32) {
        debug_assert!(self.is_precharged(), "REF with an active bank");
        self.next_act = self.next_act.max(now + BusCycle::from(lockout));
    }

    /// Serializes the bank's complete state (checkpoint support).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        use fasthash::codec::*;
        match self.state {
            BankState::Precharged => put_u8(out, 0),
            BankState::Active { row } => {
                put_u8(out, 1);
                put_u32(out, row);
            }
        }
        for v in [
            self.next_act,
            self.next_pre,
            self.next_rd,
            self.next_wr,
            self.act_at,
        ] {
            put_u64(out, v);
        }
        put_u32(out, self.cur_tras);
    }

    /// Restores state saved by [`Self::save_state`].
    pub fn load_state(&mut self, input: &mut &[u8]) -> Result<(), String> {
        use fasthash::codec::*;
        self.state = match take_u8(input, "bank state tag")? {
            0 => BankState::Precharged,
            1 => BankState::Active {
                row: take_u32(input, "open row")?,
            },
            t => return Err(format!("invalid bank state tag {t}")),
        };
        self.next_act = take_u64(input, "bank next_act")?;
        self.next_pre = take_u64(input, "bank next_pre")?;
        self.next_rd = take_u64(input, "bank next_rd")?;
        self.next_wr = take_u64(input, "bank next_wr")?;
        self.act_at = take_u64(input, "bank act_at")?;
        self.cur_tras = take_u32(input, "bank cur_tras")?;
        Ok(())
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn act_opens_row_and_sets_gates() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(10, t.act_timings(), &t, 5);
        assert_eq!(b.open_row(), Some(5));
        assert_eq!(b.earliest_rd(0), 10 + u64::from(t.trcd));
        assert_eq!(b.earliest_pre(0), 10 + u64::from(t.tras));
        assert_eq!(b.earliest_act(0), 10 + u64::from(t.trc));
    }

    #[test]
    fn pre_closes_row_and_gates_act() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(0, t.act_timings(), &t, 5);
        let pre_at = b.earliest_pre(0);
        let row = b.issue_pre(pre_at, &t);
        assert_eq!(row, 5);
        assert!(b.is_precharged());
        assert_eq!(b.earliest_act(0), pre_at + u64::from(t.trp));
    }

    #[test]
    fn read_to_precharge_respects_trtp() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(0, t.act_timings(), &t, 5);
        let rd_at = 10 + u64::from(t.trcd) + 100; // late read
        b.issue_rd(rd_at, &t, false);
        assert_eq!(b.earliest_pre(0), rd_at + u64::from(t.trtp));
    }

    #[test]
    fn write_recovery_gates_precharge() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(0, t.act_timings(), &t, 5);
        let wr_at = u64::from(t.trcd);
        b.issue_wr(wr_at, &t, false);
        assert_eq!(b.earliest_pre(0), wr_at + u64::from(t.tcwl + t.tbl + t.twr));
    }

    #[test]
    fn auto_precharge_waits_for_tras() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(0, t.act_timings(), &t, 5);
        // Early read: the internal precharge must still wait for tRAS.
        let rd_at = u64::from(t.trcd);
        let (row, pre_start) = b.issue_rd(rd_at, &t, true).unwrap();
        assert_eq!(row, 5);
        assert_eq!(pre_start, u64::from(t.tras));
        assert!(b.is_precharged());
        assert_eq!(b.earliest_act(0), pre_start + u64::from(t.trp));
    }

    #[test]
    fn auto_precharge_with_reduced_tras_starts_earlier() {
        let t = t();
        let mut b = Bank::new();
        let red = t.act_timings().reduced_by(4, 8);
        b.issue_act(0, red, &t, 5);
        let rd_at = u64::from(red.trcd);
        let (_, pre_start) = b.issue_rd(rd_at, &t, true).unwrap();
        assert_eq!(pre_start, u64::from(t.tras - 8));
    }

    #[test]
    fn refresh_gates_activation() {
        let t = t();
        let mut b = Bank::new();
        b.apply_refresh(100, &t);
        assert_eq!(b.earliest_act(0), 100 + u64::from(t.trfc));
    }

    #[test]
    fn per_bank_refresh_lockout_uses_given_cycles() {
        let t = t();
        let mut b = Bank::new();
        b.apply_refresh_lockout(100, t.trfcpb / 2);
        assert_eq!(b.earliest_act(0), 100 + u64::from(t.trfcpb / 2));
    }

    #[test]
    #[should_panic(expected = "ACT to an active bank")]
    fn double_act_panics() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(0, t.act_timings(), &t, 1);
        b.issue_act(1, t.act_timings(), &t, 2);
    }
}
