//! Golden timing regression: a fixed command script must be quoted at
//! exactly these cycles. Pins down the interaction of every implemented
//! constraint so model changes cannot silently shift timings.

use dram::{ActTimings, BankLoc, Command, DramConfig, DramDevice};

fn loc(bank: u8) -> BankLoc {
    BankLoc {
        channel: 0,
        rank: 0,
        bank,
    }
}

/// Issues each command at its earliest legal cycle and asserts that cycle.
fn replay(dev: &mut DramDevice, act: ActTimings, script: &[(Command, u64)]) {
    for (i, &(cmd, expect)) in script.iter().enumerate() {
        let t = dev
            .earliest_issue(&cmd, 0)
            .unwrap_or_else(|e| panic!("step {i}: {cmd:?} illegal: {e}"));
        assert_eq!(t, expect, "step {i}: {cmd:?}");
        dev.issue(&cmd, t, act);
    }
}

#[test]
fn golden_single_bank_open_row_sequence() {
    // DDR3-1600: tRCD 11, tCL 11, tBL 4, tCCD 4, tRTP 6, tRP 11, tRAS 28,
    // tRC 39, tCWL 8, tWR 12, tWTR 6.
    let cfg = DramConfig::ddr3_1600_paper();
    let mut dev = DramDevice::new(cfg.clone());
    let spec = cfg.timing.act_timings();
    replay(
        &mut dev,
        spec,
        &[
            (Command::act(loc(0), 100), 0),
            (Command::rd(loc(0), 0), 11),    // tRCD
            (Command::rd(loc(0), 1), 15),    // +tCCD
            (Command::wr(loc(0), 2), 24),    // RD→WR: 15 + tCL+tBL+2−tCWL = 15+9
            (Command::rd(loc(0), 3), 42),    // WR→RD: 24 + tCWL+tBL+tWTR = 24+18
            (Command::pre(loc(0)), 48),      // RD→PRE: 42 + tRTP (> tRAS=28)
            (Command::act(loc(0), 101), 59), // PRE + tRP
        ],
    );
}

#[test]
fn golden_bank_interleaving_with_trrd_and_tfaw() {
    // tRRD 5, tFAW 24: four ACTs at 0,5,10,15; the fifth waits for 24.
    let cfg = DramConfig::ddr3_1600_paper();
    let mut dev = DramDevice::new(cfg.clone());
    let spec = cfg.timing.act_timings();
    replay(
        &mut dev,
        spec,
        &[
            (Command::act(loc(0), 1), 0),
            (Command::act(loc(1), 1), 5),
            (Command::act(loc(2), 1), 10),
            (Command::act(loc(3), 1), 15),
            (Command::act(loc(4), 1), 24), // tFAW window
            (Command::act(loc(5), 1), 29), // tRRD after the fifth
        ],
    );
}

#[test]
fn golden_reduced_activation_sequence() {
    // A ChargeCache hit (4/8 reduction): tRCD 7, tRAS 20 → RD at 7,
    // PRE at max(tRAS=20, rd+tRTP=13) = 20, next ACT at 31.
    let cfg = DramConfig::ddr3_1600_paper();
    let mut dev = DramDevice::new(cfg.clone());
    let red = cfg.timing.act_timings().reduced_by(4, 8);
    replay(
        &mut dev,
        red,
        &[
            (Command::act(loc(0), 7), 0),
            (Command::rd(loc(0), 0), 7),
            (Command::pre(loc(0)), 20),
            (Command::act(loc(0), 8), 31),
        ],
    );
}

#[test]
fn golden_write_recovery_gates_precharge() {
    // WR at tRCD=11; PRE must wait tCWL+tBL+tWR = 8+4+12 = 24 after it,
    // and tRAS=28 from ACT: max(11+24, 28) = 35.
    let cfg = DramConfig::ddr3_1600_paper();
    let mut dev = DramDevice::new(cfg.clone());
    let spec = cfg.timing.act_timings();
    replay(
        &mut dev,
        spec,
        &[
            (Command::act(loc(0), 1), 0),
            (Command::wr(loc(0), 0), 11),
            (Command::pre(loc(0)), 35),
        ],
    );
}

#[test]
fn golden_auto_precharge_timeline() {
    // RDA at tRCD: internal precharge starts at max(ACT+tRAS, RD+tRTP) =
    // max(28, 17) = 28; bank re-activates at 28 + tRP = 39 (= tRC).
    let cfg = DramConfig::ddr3_1600_paper();
    let mut dev = DramDevice::new(cfg.clone());
    let spec = cfg.timing.act_timings();
    let act = Command::act(loc(0), 1);
    dev.issue(&act, 0, spec);
    let rda = Command::rda(loc(0), 0);
    let t = dev.earliest_issue(&rda, 0).unwrap();
    assert_eq!(t, 11);
    let out = dev.issue(&rda, t, spec);
    assert_eq!(out.closed_rows, vec![(loc(0), 1, 28)]);
    assert_eq!(out.data_at, Some(11 + 11 + 4));
    let next = Command::act(loc(0), 2);
    assert_eq!(dev.earliest_issue(&next, 0).unwrap(), 39);
}

#[test]
fn golden_refresh_lockout() {
    // REF at its due time (tREFI = 6250) locks every bank for tRFC = 208.
    let cfg = DramConfig::ddr3_1600_paper();
    let mut dev = DramDevice::new(cfg.clone());
    let spec = cfg.timing.act_timings();
    let rank = loc(0).rank_loc();
    let due = dev.refresh_due(rank);
    assert_eq!(due, 6250);
    let rf = Command::Ref { rank };
    dev.issue(&rf, due, spec);
    for bank in 0..8 {
        let act = Command::act(loc(bank), 0);
        assert_eq!(dev.earliest_issue(&act, due).unwrap(), due + 208);
    }
}

#[test]
fn stacked_configuration_is_usable() {
    let cfg = DramConfig::stacked_like();
    cfg.validate().unwrap();
    let mut dev = DramDevice::new(cfg.clone());
    let spec = cfg.timing.act_timings();
    // Eight channels operate independently: same-cycle ACTs are legal.
    for ch in 0..8 {
        let l = BankLoc {
            channel: ch,
            rank: 0,
            bank: 0,
        };
        assert_eq!(dev.earliest_issue(&Command::act(l, 3), 0).unwrap(), 0);
        dev.issue(&Command::act(l, 3), 0, spec);
    }
    assert_eq!(dev.stats().acts, 8);
}

#[test]
fn golden_two_rank_data_bus_switch() {
    // Two ranks on one channel: back-to-back reads from different ranks
    // pay the tRTRS bus-switch penalty on top of tCCD.
    let mut cfg = DramConfig::ddr3_1600_paper();
    cfg.org.ranks = 2;
    let t = cfg.timing.clone();
    let mut dev = DramDevice::new(cfg);
    let spec = t.act_timings();
    let r0 = BankLoc {
        channel: 0,
        rank: 0,
        bank: 0,
    };
    let r1 = BankLoc {
        channel: 0,
        rank: 1,
        bank: 0,
    };
    dev.issue(&Command::act(r0, 1), 0, spec);
    dev.issue(&Command::act(r1, 1), 1, spec);
    let rd0 = Command::rd(r0, 0);
    let t0 = dev.earliest_issue(&rd0, 0).unwrap();
    assert_eq!(t0, 11);
    dev.issue(&rd0, t0, spec);
    // Same-rank next read: tCCD = 4 → 15. Cross-rank: the rank-1 burst
    // must clear rank 0's burst end (11+11+4 = 26) plus tRTRS = 2, so the
    // RD may issue at 28 − tCL = 17.
    let rd1 = Command::rd(r1, 0);
    let t1 = dev.earliest_issue(&rd1, 0).unwrap();
    assert_eq!(t1, 17);
}
