//! Randomized tests: a controller that always asks `earliest_issue` first
//! can never corrupt the device, and the device's answers are
//! self-consistent. Command sequences come from a seeded in-file PRNG so
//! every run checks the same set.

use dram::{AddressMapper, BankLoc, Command, DramConfig, DramDevice, MappingScheme, Organization};

/// xorshift64* — deterministic case generator.
struct Cases(u64);

impl Cases {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Random command intents against a single-channel device. The harness
/// resolves each intent into a legal command (or skips it), mimicking an
/// arbitrary-but-law-abiding controller.
#[derive(Debug, Clone, Copy)]
enum Intent {
    Act { bank: u8, row: u16 },
    Pre { bank: u8 },
    Rd { bank: u8, col: u8, auto: bool },
    Wr { bank: u8, col: u8, auto: bool },
    Refresh,
}

fn random_intent(c: &mut Cases) -> Intent {
    match c.below(5) {
        0 => Intent::Act {
            bank: c.below(8) as u8,
            row: c.next_u64() as u16,
        },
        1 => Intent::Pre {
            bank: c.below(8) as u8,
        },
        2 => Intent::Rd {
            bank: c.below(8) as u8,
            col: c.below(128) as u8,
            auto: c.bool(),
        },
        3 => Intent::Wr {
            bank: c.below(8) as u8,
            col: c.below(128) as u8,
            auto: c.bool(),
        },
        _ => Intent::Refresh,
    }
}

fn loc(bank: u8) -> BankLoc {
    BankLoc {
        channel: 0,
        rank: 0,
        bank,
    }
}

/// Issue hundreds of random-but-legal commands; the device must accept
/// each at exactly the cycle it quoted, and row-buffer state must track
/// the command stream.
#[test]
fn random_legal_sequences_never_violate() {
    let mut c = Cases::new(0xD4A7);
    for _ in 0..64 {
        let n = 1 + c.below(299) as usize;
        let cfg = DramConfig::ddr3_1600_paper();
        let mut dev = DramDevice::new(cfg.clone());
        let spec = cfg.timing.act_timings();
        let mut now = 0u64;
        let mut last_data = 0u64;

        for _ in 0..n {
            let cmd = match random_intent(&mut c) {
                Intent::Act { bank, row } => {
                    if dev.open_row(loc(bank)).is_some() {
                        continue;
                    }
                    Command::act(loc(bank), u32::from(row) % cfg.org.rows)
                }
                Intent::Pre { bank } => {
                    if dev.open_row(loc(bank)).is_none() {
                        continue;
                    }
                    Command::pre(loc(bank))
                }
                Intent::Rd { bank, col, auto } => {
                    if dev.open_row(loc(bank)).is_none() {
                        continue;
                    }
                    if auto {
                        Command::rda(loc(bank), u32::from(col))
                    } else {
                        Command::rd(loc(bank), u32::from(col))
                    }
                }
                Intent::Wr { bank, col, auto } => {
                    if dev.open_row(loc(bank)).is_none() {
                        continue;
                    }
                    if auto {
                        Command::wra(loc(bank), u32::from(col))
                    } else {
                        Command::wr(loc(bank), u32::from(col))
                    }
                }
                Intent::Refresh => {
                    let rank = loc(0).rank_loc();
                    if !dev.all_banks_precharged(rank) {
                        continue;
                    }
                    Command::Ref { rank }
                }
            };
            let was_open = dev.open_row(BankLoc {
                channel: 0,
                rank: 0,
                bank: cmd.bank().unwrap_or(0),
            });
            let at = dev
                .earliest_issue(&cmd, now)
                .expect("resolved intents are legal");
            assert!(at >= now, "quoted time in the past");
            let out = dev.issue(&cmd, at, spec);
            now = at;

            match cmd {
                Command::Act { loc, row } => {
                    assert_eq!(dev.open_row(loc), Some(row));
                }
                Command::Pre { loc } => {
                    assert_eq!(dev.open_row(loc), None);
                    assert_eq!(out.closed_rows.len(), 1);
                    assert_eq!(out.closed_rows[0].1, was_open.unwrap());
                }
                Command::Rd { loc, auto_pre, .. } => {
                    let data = out.data_at.expect("reads return data");
                    assert!(data > at);
                    // Data beats never go backwards on the shared bus.
                    assert!(data >= last_data, "data bus collision");
                    last_data = data;
                    if auto_pre {
                        assert_eq!(dev.open_row(loc), None);
                    }
                }
                Command::Wr { loc, auto_pre, .. } => {
                    assert!(out.write_done_at.unwrap() > at);
                    if auto_pre {
                        assert_eq!(dev.open_row(loc), None);
                    }
                }
                _ => {}
            }
        }
    }
}

/// The address mapping is a bijection between line addresses and
/// coordinates for every scheme/permutation combination.
#[test]
fn address_mapping_bijective() {
    let mut c = Cases::new(0xD4A8);
    for _ in 0..256 {
        let addr = c.next_u64();
        let xor = c.bool();
        for scheme in [MappingScheme::RoRaBaCoCh, MappingScheme::RoCoRaBaCh] {
            let m = AddressMapper::new(Organization::paper(2), scheme, xor);
            let line = (addr % m.capacity_bytes()) & !63;
            let d = m.decode(line);
            assert_eq!(m.encode(d), line);
            // Decoded coordinates are always in range.
            assert!(u32::from(d.loc.channel) < 2);
            assert!(d.row < m.organization().rows);
            assert!(d.col < m.organization().columns);
        }
    }
}

/// earliest_issue is stable: quoting twice gives the same answer, and
/// quoting later never gives an earlier answer.
#[test]
fn earliest_issue_is_monotone() {
    let mut c = Cases::new(0xD4A9);
    for _ in 0..256 {
        let row = c.below(65536) as u32;
        let delay = c.below(100);
        let cfg = DramConfig::ddr3_1600_paper();
        let mut dev = DramDevice::new(cfg.clone());
        dev.issue(&Command::act(loc(0), row), 0, cfg.timing.act_timings());
        let rd = Command::rd(loc(0), 0);
        let t1 = dev.earliest_issue(&rd, 0).unwrap();
        let t2 = dev.earliest_issue(&rd, 0).unwrap();
        assert_eq!(t1, t2);
        let t3 = dev.earliest_issue(&rd, delay).unwrap();
        assert!(t3 >= t1.min(delay));
        assert!(t3 >= delay);
    }
}
