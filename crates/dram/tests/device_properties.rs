//! Property tests: a controller that always asks `earliest_issue` first can
//! never corrupt the device, and the device's answers are self-consistent.

use dram::{
    AddressMapper, BankLoc, Command, DramConfig, DramDevice, MappingScheme, Organization,
};
use proptest::prelude::*;

/// Random command intents against a single-channel device. The harness
/// resolves each intent into a legal command (or skips it), mimicking an
/// arbitrary-but-law-abiding controller.
#[derive(Debug, Clone, Copy)]
enum Intent {
    Act { bank: u8, row: u16 },
    Pre { bank: u8 },
    Rd { bank: u8, col: u8, auto: bool },
    Wr { bank: u8, col: u8, auto: bool },
    Refresh,
}

fn intent_strategy() -> impl Strategy<Value = Intent> {
    prop_oneof![
        (0u8..8, any::<u16>()).prop_map(|(bank, row)| Intent::Act { bank, row }),
        (0u8..8).prop_map(|bank| Intent::Pre { bank }),
        (0u8..8, 0u8..128, any::<bool>())
            .prop_map(|(bank, col, auto)| Intent::Rd { bank, col, auto }),
        (0u8..8, 0u8..128, any::<bool>())
            .prop_map(|(bank, col, auto)| Intent::Wr { bank, col, auto }),
        Just(Intent::Refresh),
    ]
}

fn loc(bank: u8) -> BankLoc {
    BankLoc {
        channel: 0,
        rank: 0,
        bank,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Issue hundreds of random-but-legal commands; the device must accept
    /// each at exactly the cycle it quoted, and row-buffer state must track
    /// the command stream.
    #[test]
    fn random_legal_sequences_never_violate(intents in prop::collection::vec(intent_strategy(), 1..300)) {
        let cfg = DramConfig::ddr3_1600_paper();
        let mut dev = DramDevice::new(cfg.clone());
        let spec = cfg.timing.act_timings();
        let mut now = 0u64;
        let mut last_data = 0u64;

        for intent in intents {
            let cmd = match intent {
                Intent::Act { bank, row } => {
                    if dev.open_row(loc(bank)).is_some() { continue; }
                    Command::act(loc(bank), u32::from(row) % cfg.org.rows)
                }
                Intent::Pre { bank } => {
                    if dev.open_row(loc(bank)).is_none() { continue; }
                    Command::pre(loc(bank))
                }
                Intent::Rd { bank, col, auto } => {
                    if dev.open_row(loc(bank)).is_none() { continue; }
                    if auto { Command::rda(loc(bank), u32::from(col)) }
                    else { Command::rd(loc(bank), u32::from(col)) }
                }
                Intent::Wr { bank, col, auto } => {
                    if dev.open_row(loc(bank)).is_none() { continue; }
                    if auto { Command::wra(loc(bank), u32::from(col)) }
                    else { Command::wr(loc(bank), u32::from(col)) }
                }
                Intent::Refresh => {
                    let rank = loc(0).rank_loc();
                    if !dev.all_banks_precharged(rank) { continue; }
                    Command::Ref { rank }
                }
            };
            let was_open = dev.open_row(BankLoc { channel: 0, rank: 0, bank: cmd.bank().unwrap_or(0) });
            let at = dev.earliest_issue(&cmd, now).expect("resolved intents are legal");
            prop_assert!(at >= now, "quoted time in the past");
            let out = dev.issue(&cmd, at, spec);
            now = at;

            match cmd {
                Command::Act { loc, row } => {
                    prop_assert_eq!(dev.open_row(loc), Some(row));
                }
                Command::Pre { loc } => {
                    prop_assert_eq!(dev.open_row(loc), None);
                    prop_assert_eq!(out.closed_rows.len(), 1);
                    prop_assert_eq!(out.closed_rows[0].1, was_open.unwrap());
                }
                Command::Rd { loc, auto_pre, .. } => {
                    let data = out.data_at.expect("reads return data");
                    prop_assert!(data > at);
                    // Data beats never go backwards on the shared bus.
                    prop_assert!(data >= last_data, "data bus collision");
                    last_data = data;
                    if auto_pre {
                        prop_assert_eq!(dev.open_row(loc), None);
                    }
                }
                Command::Wr { loc, auto_pre, .. } => {
                    prop_assert!(out.write_done_at.unwrap() > at);
                    if auto_pre {
                        prop_assert_eq!(dev.open_row(loc), None);
                    }
                }
                _ => {}
            }
        }
    }

    /// The address mapping is a bijection between line addresses and
    /// coordinates for every scheme/permutation combination.
    #[test]
    fn address_mapping_bijective(addr in any::<u64>(), xor in any::<bool>()) {
        for scheme in [MappingScheme::RoRaBaCoCh, MappingScheme::RoCoRaBaCh] {
            let m = AddressMapper::new(Organization::paper(2), scheme, xor);
            let line = (addr % m.capacity_bytes()) & !63;
            let d = m.decode(line);
            prop_assert_eq!(m.encode(d), line);
            // Decoded coordinates are always in range.
            prop_assert!(u32::from(d.loc.channel) < 2);
            prop_assert!(d.row < m.organization().rows);
            prop_assert!(d.col < m.organization().columns);
        }
    }

    /// earliest_issue is stable: quoting twice gives the same answer, and
    /// quoting later never gives an earlier answer.
    #[test]
    fn earliest_issue_is_monotone(row in 0u32..65536, delay in 0u64..100) {
        let cfg = DramConfig::ddr3_1600_paper();
        let mut dev = DramDevice::new(cfg.clone());
        dev.issue(&Command::act(loc(0), row), 0, cfg.timing.act_timings());
        let rd = Command::rd(loc(0), 0);
        let t1 = dev.earliest_issue(&rd, 0).unwrap();
        let t2 = dev.earliest_issue(&rd, 0).unwrap();
        prop_assert_eq!(t1, t2);
        let t3 = dev.earliest_issue(&rd, delay).unwrap();
        prop_assert!(t3 >= t1.min(delay));
        prop_assert!(t3 >= delay);
    }
}
