//! Figure 4: stacked RLTL at 0.125/0.25/0.5/1/32 ms for open- and
//! closed-row policies.
//!
//! Paper result: single-core 0.125ms-RLTL averages 66%, eight-core 77%;
//! the row-buffer policy barely moves the numbers.

use bench::{banner, mean, mixes, pct, workloads};
use chargecache::{ChargeCacheConfig, MechanismKind};
use memctrl::RowPolicy;
use sim::exp::{default_threads, par_map, run_configured, ExpParams};
use sim::SystemConfig;
use traces::WorkloadSpec;

/// Indices of the paper's Figure 4 intervals within the tracker buckets
/// (0.125, 0.25, 0.5, 1, 8, 32 ms) — Figure 4 omits the 8 ms bucket.
const FIG4_IDX: [usize; 5] = [0, 1, 2, 3, 5];
const FIG4_LABELS: [&str; 5] = ["0.125ms", "0.25ms", "0.5ms", "1ms", "32ms"];

fn run_policy_single(spec: &WorkloadSpec, policy: RowPolicy, p: &ExpParams) -> sim::RunResult {
    let mut cfg = SystemConfig::paper_single_core(MechanismKind::Baseline);
    cfg.ctrl.row_policy = policy;
    run_configured(cfg, std::slice::from_ref(spec), p)
}

fn run_policy_eight(mix: &traces::MixSpec, policy: RowPolicy, p: &ExpParams) -> sim::RunResult {
    let mut cfg = SystemConfig::paper_eight_core(MechanismKind::Baseline);
    cfg.ctrl.row_policy = policy;
    run_configured(cfg, &mix.apps, p)
}

fn print_row(name: &str, policy: &str, r: &sim::RunResult) -> Vec<f64> {
    let fr: Vec<f64> = FIG4_IDX.iter().map(|&i| r.rltl.rltl_fraction[i]).collect();
    print!("{name:<12} {policy:<7}");
    for f in &fr {
        print!(" {:>8}", pct(*f));
    }
    println!();
    fr
}

fn main() {
    let _ = ChargeCacheConfig::paper();
    let p = ExpParams::bench();
    banner(
        "Figure 4: RLTL at 0.125/0.25/0.5/1/32 ms, open vs closed row",
        "1-core 0.125ms-RLTL ≈ 66%, 8-core ≈ 77%; policy has little effect",
    );

    println!("--- (a) single-core workloads ---");
    print!("{:<12} {:<7}", "workload", "policy");
    for l in FIG4_LABELS {
        print!(" {l:>8}");
    }
    println!();
    let mut avg_open = vec![Vec::new(); 5];
    let mut avg_closed = vec![Vec::new(); 5];
    let specs = workloads();
    let results = par_map(
        specs
            .iter()
            .flat_map(|s| [(s.clone(), RowPolicy::Open), (s.clone(), RowPolicy::Closed)])
            .collect::<Vec<_>>(),
        default_threads(),
        |(spec, pol)| (spec.name, pol, run_policy_single(&spec, pol, &p)),
    );
    for (name, pol, r) in results {
        let label = if pol == RowPolicy::Open {
            "open"
        } else {
            "closed"
        };
        let fr = print_row(name, label, &r);
        if r.rltl.activations > 0 {
            let store = if pol == RowPolicy::Open {
                &mut avg_open
            } else {
                &mut avg_closed
            };
            for (acc, f) in store.iter_mut().zip(fr) {
                acc.push(f);
            }
        }
    }
    print!("{:<12} {:<7}", "AVG", "open");
    for acc in &avg_open {
        print!(" {:>8}", pct(mean(acc)));
    }
    println!();
    print!("{:<12} {:<7}", "AVG", "closed");
    for acc in &avg_closed {
        print!(" {:>8}", pct(mean(acc)));
    }
    println!();

    println!("\n--- (b) eight-core workloads ---");
    print!("{:<12} {:<7}", "mix", "policy");
    for l in FIG4_LABELS {
        print!(" {l:>8}");
    }
    println!();
    let mut avg8 = vec![Vec::new(); 5];
    let mix_list = mixes(20);
    let results = par_map(
        mix_list
            .iter()
            .flat_map(|m| [(m.clone(), RowPolicy::Open), (m.clone(), RowPolicy::Closed)])
            .collect::<Vec<_>>(),
        default_threads(),
        |(mix, pol)| (mix.name.clone(), pol, run_policy_eight(&mix, pol, &p)),
    );
    for (name, pol, r) in results {
        let label = if pol == RowPolicy::Open {
            "open"
        } else {
            "closed"
        };
        let fr = print_row(&name, label, &r);
        for (acc, f) in avg8.iter_mut().zip(fr) {
            acc.push(f);
        }
    }
    print!("{:<12} {:<7}", "AVG", "both");
    for acc in &avg8 {
        print!(" {:>8}", pct(mean(acc)));
    }
    println!();
}
