//! Figure 4: stacked RLTL at 0.125/0.25/0.5/1/32 ms for open- and
//! closed-row policies.
//!
//! Paper result: single-core 0.125ms-RLTL averages 66%, eight-core 77%;
//! the row-buffer policy barely moves the numbers.
//!
//! All five interval points come from **one run per (subject, policy)**:
//! the RLTL tracker accumulates every bucket in a single simulation, and
//! the sweep is declared as one `sim::api` grid per core count.

use bench::{banner, mean, mixes, pct, workloads};
use chargecache::MechanismSpec;
use memctrl::RowPolicy;
use sim::api::{Experiment, Variant};
use sim::exp::ExpParams;

/// Indices of the paper's Figure 4 intervals within the tracker buckets
/// (0.125, 0.25, 0.5, 1, 8, 32 ms) — Figure 4 omits the 8 ms bucket.
const FIG4_IDX: [usize; 5] = [0, 1, 2, 3, 5];
const FIG4_LABELS: [&str; 5] = ["0.125ms", "0.25ms", "0.5ms", "1ms", "32ms"];

fn policy_variants() -> [Variant; 2] {
    [
        Variant::new("open", |cfg| cfg.ctrl.row_policy = RowPolicy::Open),
        Variant::new("closed", |cfg| cfg.ctrl.row_policy = RowPolicy::Closed),
    ]
}

fn print_row(name: &str, policy: &str, r: &sim::RunResult) -> Vec<f64> {
    let fr: Vec<f64> = FIG4_IDX.iter().map(|&i| r.rltl.rltl_fraction[i]).collect();
    print!("{name:<12} {policy:<7}");
    for f in &fr {
        print!(" {:>8}", pct(*f));
    }
    println!();
    fr
}

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 4: RLTL at 0.125/0.25/0.5/1/32 ms, open vs closed row",
        "1-core 0.125ms-RLTL ≈ 66%, 8-core ≈ 77%; policy has little effect",
    );

    println!("--- (a) single-core workloads ---");
    print!("{:<12} {:<7}", "workload", "policy");
    for l in FIG4_LABELS {
        print!(" {l:>8}");
    }
    println!();
    let mut avg_open = vec![Vec::new(); 5];
    let mut avg_closed = vec![Vec::new(); 5];
    let sweep = Experiment::new()
        .workloads(workloads())
        .mechanism(MechanismSpec::baseline())
        .variants(policy_variants())
        .params(p)
        .run()
        .expect("paper configuration is valid");
    for cell in &sweep.cells {
        let fr = print_row(&cell.subject, &cell.variant, cell.result());
        if cell.result().rltl.activations > 0 {
            let store = if cell.variant == "open" {
                &mut avg_open
            } else {
                &mut avg_closed
            };
            for (acc, f) in store.iter_mut().zip(fr) {
                acc.push(f);
            }
        }
    }
    print!("{:<12} {:<7}", "AVG", "open");
    for acc in &avg_open {
        print!(" {:>8}", pct(mean(acc)));
    }
    println!();
    print!("{:<12} {:<7}", "AVG", "closed");
    for acc in &avg_closed {
        print!(" {:>8}", pct(mean(acc)));
    }
    println!();

    println!("\n--- (b) eight-core workloads ---");
    print!("{:<12} {:<7}", "mix", "policy");
    for l in FIG4_LABELS {
        print!(" {l:>8}");
    }
    println!();
    let mut avg8 = vec![Vec::new(); 5];
    let sweep8 = Experiment::new()
        .mixes(mixes(20))
        .mechanism(MechanismSpec::baseline())
        .variants(policy_variants())
        .params(p)
        .run()
        .expect("paper configuration is valid");
    for cell in &sweep8.cells {
        let fr = print_row(&cell.subject, &cell.variant, cell.result());
        for (acc, f) in avg8.iter_mut().zip(fr) {
            acc.push(f);
        }
    }
    print!("{:<12} {:<7}", "AVG", "both");
    for acc in &avg8 {
        print!(" {:>8}", pct(mean(acc)));
    }
    println!();
}
