//! Latency sensitivity: speedup versus DRAM speed bin.
//!
//! The paper evaluates one device — DDR3-1600 11-11-11 (Table 1) — and
//! argues (Section 7.2) that ChargeCache applies to any DDR-derived
//! interface. This figure asks the obvious follow-on question the paper
//! leaves open: how does row-access-locality caching pay off as the
//! baseline gets faster or slower? Each JEDEC speed bin re-quantizes the
//! HCRAC hit timings and the NUAT bins against its own clock
//! (`tck_ns`), and the core-to-bus clock ratio follows the bin, so the
//! sweep crosses mechanisms × speed bins on equal footing.
//!
//! Expected shape: the *absolute* tRCD/tRAS cycle counts grow with the
//! clock rate (the analog timings are nearly constant in nanoseconds),
//! so the latency ChargeCache can shave stays roughly constant in ns
//! while everything else gets faster — the relative speedup persists
//! across bins rather than vanishing on faster parts.

use bench::{banner, mean, pct, workloads};
use chargecache::MechanismSpec;
use dram::{SpeedBin, TimingSpec};
use sim::api::Experiment;
use sim::exp::ExpParams;

fn main() {
    let p = ExpParams::bench();
    banner(
        "Timing sensitivity: speedup vs JEDEC speed bin (cc/ccnuat/ll)",
        "beyond the paper: Section 7.2 claims applicability across DDR-derived interfaces",
    );

    let mechanisms = [
        MechanismSpec::baseline(),
        MechanismSpec::chargecache(),
        MechanismSpec::cc_nuat(),
        MechanismSpec::lldram(),
    ];
    let sweep = Experiment::new()
        .workloads(workloads())
        .timings(SpeedBin::DDR3.iter().map(|&b| TimingSpec::for_bin(b)))
        .mechanisms(&mechanisms)
        .params(p)
        .run()
        .expect("paper configuration is valid");

    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "speed bin", "tRCD", "base IPC", "cc", "ccnuat", "ll"
    );
    for bin in SpeedBin::DDR3 {
        let timing = TimingSpec::for_bin(bin).to_string();
        let trcd = bin.timing().trcd;
        let mut base_ipc = Vec::new();
        let mut speedups = [Vec::new(), Vec::new(), Vec::new()];
        for w in workloads() {
            let base = sweep
                .cell_at(w.name, &timing, "baseline", "paper")
                .expect("baseline cell");
            base_ipc.push(base.result().ipc(0));
            for (i, mech) in ["chargecache", "cc-nuat", "lldram"].iter().enumerate() {
                let c = sweep
                    .cell_at(w.name, &timing, mech, "paper")
                    .expect("mechanism cell");
                speedups[i].push(c.result().ipc(0) / base.result().ipc(0).max(1e-9) - 1.0);
            }
        }
        println!(
            "{:<12} {:>6} {:>10.4} {:>10} {:>10} {:>10}",
            timing,
            trcd,
            mean(&base_ipc),
            pct(mean(&speedups[0])),
            pct(mean(&speedups[1])),
            pct(mean(&speedups[2]))
        );
    }
}
