//! Figure 10: speedup versus ChargeCache capacity.
//!
//! Paper results (eight-core): 128 entries → 8.8%, 1024 entries → 10.6%;
//! benefits grow with capacity but diminish at the high end.

use bench::{all_eight, all_single, banner, mean, mixes, pct, sweep_mix_count};
use chargecache::{ChargeCacheConfig, MechanismKind};
use sim::exp::ExpParams;

const CAPACITIES: [usize; 6] = [32, 64, 128, 256, 512, 1024];

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 10: speedup vs HCRAC capacity",
        "8-core: 8.8% at 128 entries, 10.6% at 1024; diminishing returns",
    );

    // Baselines are capacity-independent: run once.
    let base1: Vec<f64> = all_single(MechanismKind::Baseline, &ChargeCacheConfig::paper(), &p)
        .iter()
        .map(|(_, r)| r.ipc(0))
        .collect();
    let mix_list = mixes(sweep_mix_count());
    let base8: Vec<f64> = all_eight(
        MechanismKind::Baseline,
        &ChargeCacheConfig::paper(),
        &p,
        &mix_list,
    )
    .iter()
    .map(|(_, r)| r.ipc_sum())
    .collect();

    println!(
        "{:<10} {:>14} {:>14}",
        "entries", "1-core spdup", "8-core spdup"
    );
    for entries in CAPACITIES {
        let cc = ChargeCacheConfig::with_entries(entries);
        let s1: Vec<f64> = all_single(MechanismKind::ChargeCache, &cc, &p)
            .iter()
            .zip(&base1)
            .map(|((_, r), &b)| r.ipc(0) / b.max(1e-9) - 1.0)
            .collect();
        let s8: Vec<f64> = all_eight(MechanismKind::ChargeCache, &cc, &p, &mix_list)
            .iter()
            .zip(&base8)
            .map(|((_, r), &b)| r.ipc_sum() / b.max(1e-9) - 1.0)
            .collect();
        println!(
            "{:<10} {:>14} {:>14}",
            entries,
            pct(mean(&s1)),
            pct(mean(&s8))
        );
    }
}
