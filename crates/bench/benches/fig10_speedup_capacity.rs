//! Figure 10: speedup versus ChargeCache capacity.
//!
//! Paper results (eight-core): 128 entries → 8.8%, 1024 entries → 10.6%;
//! benefits grow with capacity but diminish at the high end.
//!
//! The capacity-independent baselines are their own one-variant grids
//! (memoized and shared with every other figure in the process); the
//! ChargeCache side sweeps the capacity axis as a variant list.

use bench::{banner, mean, mixes, pct, sweep_mix_count, workloads};
use chargecache::MechanismSpec;
use sim::api::{Experiment, Variant};
use sim::exp::ExpParams;

const CAPACITIES: [usize; 6] = [32, 64, 128, 256, 512, 1024];

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 10: speedup vs HCRAC capacity",
        "8-core: 8.8% at 128 entries, 10.6% at 1024; diminishing returns",
    );

    // Baselines are capacity-independent: run once.
    let specs = workloads();
    let mix_list = mixes(sweep_mix_count());
    let base1 = Experiment::new()
        .workloads(specs.clone())
        .mechanism(MechanismSpec::baseline())
        .params(p)
        .run()
        .expect("paper configuration is valid");
    let base8 = Experiment::new()
        .mixes(mix_list.clone())
        .mechanism(MechanismSpec::baseline())
        .params(p)
        .run()
        .expect("paper configuration is valid");

    let cc1 = Experiment::new()
        .workloads(specs)
        .mechanism(MechanismSpec::chargecache())
        .variants(CAPACITIES.iter().map(|&n| Variant::entries(n)))
        .params(p)
        .run()
        .expect("paper configuration is valid");
    let cc8 = Experiment::new()
        .mixes(mix_list)
        .mechanism(MechanismSpec::chargecache())
        .variants(CAPACITIES.iter().map(|&n| Variant::entries(n)))
        .params(p)
        .run()
        .expect("paper configuration is valid");

    println!(
        "{:<10} {:>14} {:>14}",
        "entries", "1-core spdup", "8-core spdup"
    );
    for entries in CAPACITIES {
        let label = entries.to_string();
        let s1: Vec<f64> = base1
            .cells
            .iter()
            .map(|b| {
                let c = cc1
                    .cell(&b.subject, "chargecache", &label)
                    .expect("capacity cell");
                c.result().ipc(0) / b.result().ipc(0).max(1e-9) - 1.0
            })
            .collect();
        let s8: Vec<f64> = base8
            .cells
            .iter()
            .map(|b| {
                let c = cc8
                    .cell(&b.subject, "chargecache", &label)
                    .expect("capacity cell");
                c.result().ipc_sum() / b.result().ipc_sum().max(1e-9) - 1.0
            })
            .collect();
        println!(
            "{:<10} {:>14} {:>14}",
            entries,
            pct(mean(&s1)),
            pct(mean(&s8))
        );
    }
}
