//! Figure 3: fraction of row activations within 8 ms after the row's
//! precharge (8ms-RLTL) versus within 8 ms after its refresh.
//!
//! Paper result: single-core 8ms-RLTL averages 86% while the
//! refresh-window fraction averages only 12% (hmmer is the no-traffic
//! exception); eight-core RLTL is even higher while the refresh fraction
//! stays the same — refreshes are uncorrelated with program behaviour.

use bench::{all_eight, all_single, banner, mean, mixes, pct};
use chargecache::MechanismSpec;
use sim::exp::ExpParams;

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 3: activations within 8 ms of precharge vs of refresh",
        "1-core avg 86% vs 12%; 8-core RLTL higher, refresh fraction unchanged",
    );

    // The 8 ms bucket is cumulative index 4 of the paper interval set
    // (0.125, 0.25, 0.5, 1, 8, 32 ms).
    const IDX_8MS: usize = 4;

    println!("--- (a) single-core workloads ---");
    println!(
        "{:<12} {:>10} {:>16} {:>12}",
        "workload", "8ms-RLTL", "8ms-after-REF", "activations"
    );
    let mut rltl = Vec::new();
    let mut refr = Vec::new();
    for (spec, r) in all_single(&MechanismSpec::baseline(), &p) {
        let f_rltl = r.rltl.rltl_fraction[IDX_8MS];
        let f_ref = r.rltl.refresh_8ms_fraction;
        println!(
            "{:<12} {:>10} {:>16} {:>12}",
            spec.name,
            pct(f_rltl),
            pct(f_ref),
            r.rltl.activations
        );
        if r.rltl.activations > 0 {
            rltl.push(f_rltl);
            refr.push(f_ref);
        }
    }
    println!(
        "{:<12} {:>10} {:>16}",
        "AVG",
        pct(mean(&rltl)),
        pct(mean(&refr))
    );

    println!("\n--- (b) eight-core workloads ---");
    println!("{:<6} {:>10} {:>16}", "mix", "8ms-RLTL", "8ms-after-REF");
    let (mut rltl8, mut refr8) = (Vec::new(), Vec::new());
    for (mix, r) in all_eight(&MechanismSpec::baseline(), &p, &mixes(20)) {
        let f_rltl = r.rltl.rltl_fraction[IDX_8MS];
        let f_ref = r.rltl.refresh_8ms_fraction;
        println!("{:<6} {:>10} {:>16}", mix.name, pct(f_rltl), pct(f_ref));
        rltl8.push(f_rltl);
        refr8.push(f_ref);
    }
    println!(
        "{:<6} {:>10} {:>16}",
        "AVG",
        pct(mean(&rltl8)),
        pct(mean(&refr8))
    );
}
