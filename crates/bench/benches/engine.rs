fn main() {}
