//! Engine throughput: simulated CPU cycles per wall-clock second for the
//! dense per-cycle loop versus the event-driven cycle-skipping engine, on
//! the Figure-7-style workload set (plus one eight-core mix).
//!
//! Prints a human table and a JSON blob; `BENCH_engine.json` at the repo
//! root records a run of this bench. Run with:
//!
//! ```sh
//! cargo bench -p bench --bench engine
//! ```
//!
//! `CC_SCALE=N` lengthens the measured runs N×.

use std::time::Instant;

use chargecache::MechanismSpec;
use sim::exp::{run_configured, ExpParams};
use sim::{Engine, SystemConfig};
use traces::{eight_core_mixes, workload, WorkloadSpec};

struct Row {
    label: String,
    cycles: u64,
    dense_s: f64,
    skip_s: f64,
}

fn time_engines(label: &str, cfg: &SystemConfig, apps: &[WorkloadSpec], p: &ExpParams) -> Row {
    // Times the un-memoized driver directly: the api-level run cache
    // would turn the second engine's run into a lookup.
    let run = |engine: Engine| {
        let mut c = cfg.clone();
        c.engine = engine;
        let t0 = Instant::now();
        let r = run_configured(c, apps, p).expect("paper configuration is valid");
        (r, t0.elapsed().as_secs_f64())
    };
    let (dense_r, dense_s) = run(Engine::PerCycle);
    let (skip_r, skip_s) = run(Engine::EventSkip);
    assert_eq!(
        dense_r.cpu_cycles, skip_r.cpu_cycles,
        "{label}: engines disagree on simulated time"
    );
    Row {
        label: label.to_string(),
        cycles: dense_r.cpu_cycles,
        dense_s,
        skip_s,
    }
}

fn main() {
    let p = ExpParams::bench();
    // The paper's Figure 7 sweep ordered by memory intensity: an
    // LLC-resident app, mid-intensity Zipf/stream apps, and the
    // DRAM-bound extremes where cycle skipping matters most.
    let singles = ["hmmer", "tpch6", "libquantum", "mcf", "STREAMcopy"];
    let mut rows = Vec::new();
    for name in singles {
        let spec = workload(name).expect("paper workload");
        let cfg = SystemConfig::paper_single_core(MechanismSpec::chargecache());
        rows.push(time_engines(name, &cfg, std::slice::from_ref(&spec), &p));
    }
    // One eight-core mix at a reduced instruction budget (8 cores of
    // work per run).
    let mix = &eight_core_mixes()[0];
    let p8 = ExpParams {
        insts_per_core: p.insts_per_core / 4,
        warmup_insts: p.warmup_insts / 4,
        ..p
    };
    let cfg8 = SystemConfig::paper_eight_core(MechanismSpec::chargecache());
    rows.push(time_engines("w1 (8-core)", &cfg8, &mix.apps, &p8));

    println!("\n=== engine throughput (simulated CPU cycles / wall second) ===\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>8}",
        "workload", "sim cycles", "per-cycle/s", "event-skip/s", "speedup"
    );
    let mut total_dense = 0.0;
    let mut total_skip = 0.0;
    for r in &rows {
        total_dense += r.dense_s;
        total_skip += r.skip_s;
        println!(
            "{:<14} {:>12} {:>12.3e} {:>12.3e} {:>7.2}x",
            r.label,
            r.cycles,
            r.cycles as f64 / r.dense_s,
            r.cycles as f64 / r.skip_s,
            r.dense_s / r.skip_s
        );
    }
    println!(
        "\ntotal wall: per-cycle {total_dense:.2} s, event-skip {total_skip:.2} s ({:.2}x)\n",
        total_dense / total_skip
    );

    // Machine-readable record (the BENCH_engine.json format).
    let mut json = String::from(
        "{\n  \"bench\": \"engine\",\n  \"unit\": \"simulated_cpu_cycles_per_wall_second\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"sim_cycles\": {}, \"per_cycle_cps\": {:.0}, \"event_skip_cps\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.label,
            r.cycles,
            r.cycles as f64 / r.dense_s,
            r.cycles as f64 / r.skip_s,
            r.dense_s / r.skip_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"total_speedup\": {:.3}\n}}",
        total_dense / total_skip
    ));
    println!("{json}");
}
