//! Figure 7: speedup of NUAT, ChargeCache, ChargeCache+NUAT and LL-DRAM
//! over the DDR3 baseline, with the RMPKC overlay.
//!
//! Paper results: single-core ChargeCache up to 9.3%, average 2.1%;
//! eight-core weighted speedup — NUAT 2.5%, ChargeCache 8.6%,
//! ChargeCache+NUAT 9.6%, LL-DRAM ≈ 13.4%. Orderings:
//! LL-DRAM ≥ CC+NUAT ≥ CC > NUAT on average, hmmer unaffected.

use std::collections::HashMap;

use bench::{all_eight, all_single, alone_ipcs, banner, mean, mixes, pct, ws_of};
use chargecache::{ChargeCacheConfig, MechanismKind};
use sim::exp::ExpParams;

const MECHS: [MechanismKind; 4] = [
    MechanismKind::Nuat,
    MechanismKind::ChargeCache,
    MechanismKind::CcNuat,
    MechanismKind::LlDram,
];

fn main() {
    let p = ExpParams::bench();
    let cc = ChargeCacheConfig::paper();
    banner(
        "Figure 7: speedup over baseline (NUAT / CC / CC+NUAT / LL-DRAM)",
        "1-core CC avg 2.1% (max 9.3%); 8-core NUAT 2.5%, CC 8.6%, CC+NUAT 9.6%",
    );

    // ---------- (a) single-core ----------
    let base: Vec<_> = all_single(MechanismKind::Baseline, &cc, &p);
    let mut per_mech: HashMap<MechanismKind, Vec<f64>> = HashMap::new();
    let mut rows: Vec<(String, f64, Vec<f64>)> = Vec::new();
    let mech_results: Vec<_> = MECHS.iter().map(|&k| (k, all_single(k, &cc, &p))).collect();
    for (i, (spec, b)) in base.iter().enumerate() {
        let b_ipc = b.ipc(0).max(1e-9);
        let speedups: Vec<f64> = mech_results
            .iter()
            .map(|(_, rs)| rs[i].1.ipc(0) / b_ipc - 1.0)
            .collect();
        for (j, (k, _)) in mech_results.iter().enumerate() {
            per_mech.entry(*k).or_default().push(speedups[j]);
        }
        rows.push((spec.name.to_string(), b.rmpkc(), speedups));
    }
    // The paper sorts Figure 7a by ascending RMPKC.
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!("--- (a) single-core (sorted by RMPKC) ---");
    println!(
        "{:<12} {:>8} {:>9} {:>12} {:>9} {:>9}",
        "workload", "RMPKC", "NUAT", "ChargeCache", "CC+NUAT", "LL-DRAM"
    );
    for (name, rmpkc, s) in &rows {
        println!(
            "{:<12} {:>8.2} {:>9} {:>12} {:>9} {:>9}",
            name,
            rmpkc,
            pct(s[0]),
            pct(s[1]),
            pct(s[2]),
            pct(s[3])
        );
    }
    print!("{:<12} {:>8} ", "AVG", "");
    for k in MECHS {
        print!("{:>10}", pct(mean(&per_mech[&k])));
    }
    println!("\n");

    // ---------- (b) eight-core (weighted speedup) ----------
    println!("--- (b) eight-core (weighted speedup over baseline) ---");
    let mix_list = mixes(20);
    // Weighted speedup uses a common set of alone-IPC denominators (the
    // baseline system's), so WS ratios reflect only the shared-run
    // improvement — the paper's "system throughput" usage.
    let alone_base = alone_ipcs(MechanismKind::Baseline, &cc, &p);
    let base8 = all_eight(MechanismKind::Baseline, &cc, &p, &mix_list);
    let ws_base: Vec<f64> = base8
        .iter()
        .map(|(m, r)| ws_of(m, r, &alone_base))
        .collect();

    println!(
        "{:<6} {:>8} {:>9} {:>12} {:>9} {:>9}",
        "mix", "RMPKC", "NUAT", "ChargeCache", "CC+NUAT", "LL-DRAM"
    );
    let mut per_mech8: HashMap<MechanismKind, Vec<f64>> = HashMap::new();
    let mech8: Vec<_> = MECHS
        .iter()
        .map(|&k| {
            let runs = all_eight(k, &cc, &p, &mix_list);
            let ws: Vec<f64> = runs.iter().map(|(m, r)| ws_of(m, r, &alone_base)).collect();
            (k, ws)
        })
        .collect();
    for (i, (mix, b)) in base8.iter().enumerate() {
        let speedups: Vec<f64> = mech8
            .iter()
            .map(|(_, ws)| ws[i] / ws_base[i].max(1e-9) - 1.0)
            .collect();
        for (j, (k, _)) in mech8.iter().enumerate() {
            per_mech8.entry(*k).or_default().push(speedups[j]);
        }
        println!(
            "{:<6} {:>8.2} {:>9} {:>12} {:>9} {:>9}",
            mix.name,
            b.rmpkc(),
            pct(speedups[0]),
            pct(speedups[1]),
            pct(speedups[2]),
            pct(speedups[3])
        );
    }
    print!("{:<6} {:>8} ", "AVG", "");
    for k in MECHS {
        print!("{:>10}", pct(mean(&per_mech8[&k])));
    }
    println!();
}
