//! Figure 7: speedup of NUAT, ChargeCache, ChargeCache+NUAT and LL-DRAM
//! over the DDR3 baseline, with the RMPKC overlay.
//!
//! Paper results: single-core ChargeCache up to 9.3%, average 2.1%;
//! eight-core weighted speedup — NUAT 2.5%, ChargeCache 8.6%,
//! ChargeCache+NUAT 9.6%, LL-DRAM ≈ 13.4%. Orderings:
//! LL-DRAM ≥ CC+NUAT ≥ CC > NUAT on average, hmmer unaffected.
//!
//! Declared as two `sim::api` grids (subjects × all five mechanisms);
//! the eight-core grid also requests memoized alone-IPC runs for the
//! weighted-speedup denominators.

use std::collections::HashMap;

use bench::{banner, mean, mixes, pct, workloads};
use chargecache::MechanismSpec;
use sim::api::Experiment;
use sim::exp::ExpParams;

/// The four non-baseline mechanisms, by registered name.
const MECHS: [&str; 4] = ["nuat", "chargecache", "cc-nuat", "lldram"];

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 7: speedup over baseline (NUAT / CC / CC+NUAT / LL-DRAM)",
        "1-core CC avg 2.1% (max 9.3%); 8-core NUAT 2.5%, CC 8.6%, CC+NUAT 9.6%",
    );

    // ---------- (a) single-core ----------
    let specs = workloads();
    let sweep = Experiment::new()
        .workloads(specs.clone())
        .mechanisms(&MechanismSpec::paper_all())
        .params(p)
        .run()
        .expect("paper configuration is valid");
    let mut per_mech: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut rows: Vec<(String, f64, Vec<f64>)> = Vec::new();
    for spec in &specs {
        let b = sweep
            .cell(spec.name, "baseline", "paper")
            .expect("baseline cell");
        let speedups: Vec<f64> = MECHS
            .iter()
            .map(|&k| {
                let c = sweep.cell(spec.name, k, "paper").expect("mechanism cell");
                sweep.speedup(c, b)
            })
            .collect();
        for (j, k) in MECHS.iter().enumerate() {
            per_mech.entry(k).or_default().push(speedups[j]);
        }
        rows.push((spec.name.to_string(), b.result().rmpkc(), speedups));
    }
    // The paper sorts Figure 7a by ascending RMPKC.
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!("--- (a) single-core (sorted by RMPKC) ---");
    println!(
        "{:<12} {:>8} {:>9} {:>12} {:>9} {:>9}",
        "workload", "RMPKC", "NUAT", "ChargeCache", "CC+NUAT", "LL-DRAM"
    );
    for (name, rmpkc, s) in &rows {
        println!(
            "{:<12} {:>8.2} {:>9} {:>12} {:>9} {:>9}",
            name,
            rmpkc,
            pct(s[0]),
            pct(s[1]),
            pct(s[2]),
            pct(s[3])
        );
    }
    print!("{:<12} {:>8} ", "AVG", "");
    for k in MECHS {
        print!("{:>10}", pct(mean(&per_mech[k])));
    }
    println!("\n");

    // ---------- (b) eight-core (weighted speedup) ----------
    println!("--- (b) eight-core (weighted speedup over baseline) ---");
    let mix_list = mixes(20);
    // Weighted speedup uses a common set of alone-IPC denominators (the
    // baseline system's), so WS ratios reflect only the shared-run
    // improvement — the paper's "system throughput" usage.
    let sweep8 = Experiment::new()
        .mixes(mix_list.clone())
        .mechanisms(&MechanismSpec::paper_all())
        .params(p)
        .alone_ipcs(MechanismSpec::baseline())
        .run()
        .expect("paper configuration is valid");

    println!(
        "{:<6} {:>8} {:>9} {:>12} {:>9} {:>9}",
        "mix", "RMPKC", "NUAT", "ChargeCache", "CC+NUAT", "LL-DRAM"
    );
    let mut per_mech8: HashMap<&str, Vec<f64>> = HashMap::new();
    for mix in &mix_list {
        let b = sweep8
            .cell(&mix.name, "baseline", "paper")
            .expect("baseline cell");
        let ws_base = sweep8.weighted_speedup(b).expect("alone runs computed");
        let speedups: Vec<f64> = MECHS
            .iter()
            .map(|&k| {
                let c = sweep8.cell(&mix.name, k, "paper").expect("mechanism cell");
                let ws = sweep8.weighted_speedup(c).expect("alone runs computed");
                ws / ws_base.max(1e-9) - 1.0
            })
            .collect();
        for (j, k) in MECHS.iter().enumerate() {
            per_mech8.entry(k).or_default().push(speedups[j]);
        }
        println!(
            "{:<6} {:>8.2} {:>9} {:>12} {:>9} {:>9}",
            mix.name,
            b.result().rmpkc(),
            pct(speedups[0]),
            pct(speedups[1]),
            pct(speedups[2]),
            pct(speedups[3])
        );
    }
    print!("{:<6} {:>8} ", "AVG", "");
    for k in MECHS {
        print!("{:>10}", pct(mean(&per_mech8[k])));
    }
    println!();
}
