//! Figure 6 + Table 2: bitline voltage versus time for fully- and
//! partially-charged cells, and the caching-duration → reduced-timing
//! table.
//!
//! Paper results: ready-to-access in 10 ns (fully charged) vs 14.5 ns
//! (64 ms-old cell) → 4.5 ns tRCD and 9.6 ns tRAS opportunity; Table 2:
//! 1 ms → 8/22 ns, 4 ms → 9/24 ns, 16 ms → 11/28 ns (baseline 13.75/35).

use bench::banner;
use bitline::derive::{CycleQuantized, ReducedTimings};
use bitline::ActivationModel;

fn main() {
    let m = ActivationModel::calibrated();
    banner(
        "Figure 6: bitline voltage during activation",
        "full cell ready in 10 ns, worst-case in 14.5 ns; reductions 4.5/9.6 ns",
    );

    println!("{:>8} {:>12} {:>12}", "t (ns)", "V_full (V)", "V_64ms (V)");
    for i in 0..=20 {
        let t = i as f64 * 2.0;
        println!(
            "{:>8.1} {:>12.4} {:>12.4}",
            t,
            m.bitline_voltage_v(0.0, t),
            m.bitline_voltage_v(64.0, t)
        );
    }
    println!();
    println!(
        "ready-to-access (fully charged): {:>6.2} ns",
        m.ready_time_ns(0.0)
    );
    println!(
        "ready-to-access (64 ms old):     {:>6.2} ns",
        m.ready_time_ns(64.0)
    );
    println!(
        "tRCD reduction opportunity:      {:>6.2} ns",
        m.trcd_reduction_ns(0.0)
    );
    println!(
        "restore (fully charged):         {:>6.2} ns",
        m.restore_time_ns(0.0)
    );
    println!(
        "restore (64 ms old):             {:>6.2} ns",
        m.restore_time_ns(64.0)
    );
    println!(
        "tRAS reduction opportunity:      {:>6.2} ns",
        m.tras_reduction_ns(0.0)
    );

    banner(
        "Table 2: tRCD and tRAS for different caching durations",
        "baseline 13.75/35 ns; 1 ms → 8/22; 4 ms → 9/24; 16 ms → 11/28",
    );
    println!(
        "{:>14} {:>10} {:>10} {:>14} {:>14}",
        "duration (ms)", "tRCD (ns)", "tRAS (ns)", "ΔtRCD (cyc)", "ΔtRAS (cyc)"
    );
    println!(
        "{:>14} {:>10.2} {:>10.1} {:>14} {:>14}",
        "baseline",
        ReducedTimings::baseline().trcd_ns,
        ReducedTimings::baseline().tras_ns,
        0,
        0
    );
    for d in [1.0, 4.0, 8.0, 16.0] {
        let t = ReducedTimings::for_duration_ms(d);
        let q = CycleQuantized::for_duration_ms(d, 1.25);
        println!(
            "{:>14} {:>10.2} {:>10.1} {:>14} {:>14}",
            d, t.trcd_ns, t.tras_ns, q.trcd_reduction, q.tras_reduction
        );
    }
}
