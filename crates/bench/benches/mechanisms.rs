//! Mechanism plugin-API overhead: does resolving mechanisms through the
//! `MechanismSpec` → `MechanismRegistry` path cost anything measurable
//! versus constructing the concrete types directly (the seed's enum
//! path)?
//!
//! Two measurements:
//!
//! 1. **Construction** — ns per mechanism build, registry vs direct.
//!    The registry adds one `RwLock` read and a name lookup per channel
//!    per system build; runs build a handful of mechanisms each, so even
//!    microseconds here would be invisible.
//! 2. **End-to-end** — simulated CPU cycles per wall second on the
//!    Figure-7 subset under ChargeCache, through the spec path. The
//!    in-loop dispatch is `Box<dyn LatencyMechanism>` in both worlds, so
//!    this should match `BENCH_engine.json`'s event-skip rows.
//!
//! `BENCH_mechanisms.json` at the repo root records a run. Run with:
//!
//! ```sh
//! cargo bench -p bench --bench mechanisms
//! ```

use std::hint::black_box;
use std::time::Instant;

use chargecache::{registry, ChargeCache, ChargeCacheConfig, MechanismContext, MechanismSpec};
use dram::TimingParams;
use sim::exp::{run_configured, ExpParams};
use sim::SystemConfig;
use traces::workload;

/// Times `f` and returns ns/op.
fn time_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut iters = 16u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 50 || iters >= 1 << 24 {
            return dt.as_nanos() as f64 / iters as f64;
        }
        iters *= 4;
    }
}

fn main() {
    let timing = TimingParams::ddr3_1600();

    // 1. Construction cost.
    let direct_ns = time_ns(|| ChargeCache::new(ChargeCacheConfig::paper(), &timing, 8));
    let spec = MechanismSpec::chargecache();
    let registry_ns = time_ns(|| {
        registry::build_spec(
            &spec,
            &MechanismContext {
                timing: &timing,
                cores: 8,
            },
        )
        .expect("built-in spec")
    });
    println!("\n=== mechanism construction (ns/build) ===\n");
    println!("direct ChargeCache::new: {direct_ns:>10.1} ns");
    println!("registry build_spec:     {registry_ns:>10.1} ns");
    println!(
        "registry overhead:       {:>10.1} ns/build (amortized over a whole run: ~0)",
        registry_ns - direct_ns
    );

    // 2. End-to-end throughput through the spec path.
    let p = ExpParams::bench();
    let singles = ["hmmer", "tpch6", "libquantum", "mcf", "STREAMcopy"];
    println!("\n=== end-to-end throughput, spec-resolved ChargeCache ===\n");
    println!(
        "{:<14} {:>12} {:>14}",
        "workload", "sim cycles", "event-skip/s"
    );
    let mut rows = Vec::new();
    for name in singles {
        let w = workload(name).expect("paper workload");
        let cfg = SystemConfig::paper_single_core(MechanismSpec::chargecache());
        // One warm-up run (allocator/page-cache effects), then measure —
        // the same discipline `benches/engine.rs` effectively has, so the
        // numbers are comparable against BENCH_engine.json.
        run_configured(cfg.clone(), std::slice::from_ref(&w), &p).expect("valid configuration");
        let t0 = Instant::now();
        let r = run_configured(cfg, std::slice::from_ref(&w), &p).expect("valid configuration");
        let secs = t0.elapsed().as_secs_f64();
        let cps = r.cpu_cycles as f64 / secs;
        println!("{name:<14} {:>12} {cps:>14.3e}", r.cpu_cycles);
        rows.push((name, r.cpu_cycles, cps));
    }

    // Machine-readable record (the BENCH_mechanisms.json format).
    let mut json = String::from("{\n  \"bench\": \"mechanisms\",\n  \"construction_ns\": {\n");
    json.push_str(&format!("    \"direct\": {direct_ns:.1},\n"));
    json.push_str(&format!("    \"registry\": {registry_ns:.1}\n  }},\n"));
    json.push_str("  \"unit\": \"simulated_cpu_cycles_per_wall_second\",\n  \"rows\": [\n");
    for (i, (name, cycles, cps)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{name}\", \"sim_cycles\": {cycles}, \"event_skip_cps\": {cps:.0}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}");
    println!("\n{json}");
}
