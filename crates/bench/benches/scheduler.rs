//! Scheduler cost: queue-depth scaling of the FR-FCFS pass and 8-core
//! mix throughput, before/after the bank-indexed rewrite.
//!
//! Two parts:
//!
//! * **Depth sweep** — drives one `MemorySystem` directly (no cores) with
//!   a seeded random request stream that keeps the read queue pegged at
//!   8/32/64 entries, and reports the wall cost of one scheduler pass and
//!   the bank evaluations per pass. The bank-indexed scheduler's per-pass
//!   cost must stay flat as the queue deepens (the flat-scan design grew
//!   linearly with occupancy).
//! * **8-core mix** — the `w1` row of `BENCH_engine.json`, timed exactly
//!   like the engine bench (same params), isolating what the scheduler
//!   rewrite buys the paper's multi-programmed configuration.
//!
//! Prints a human table and a JSON blob; `BENCH_scheduler.json` at the
//! repo root records a run. `CC_TINY=1` shrinks both parts for CI smoke.
//!
//! ```sh
//! cargo bench -p bench --bench scheduler
//! ```

use std::time::Instant;

use chargecache::MechanismSpec;
use dram::DramConfig;
use memctrl::{AccessKind, CtrlConfig, MemRequest, MemorySystem};
use sim::exp::{run_configured, ExpParams};
use sim::{Engine, SystemConfig};
use traces::eight_core_mixes;

struct DepthRow {
    depth: usize,
    bus_cycles: u64,
    wall_s: f64,
    passes: u64,
    visits: u64,
    reads_done: u64,
}

/// Runs the controller-only workload at one read-queue depth.
fn run_depth(depth: usize, bus_cycles: u64) -> DepthRow {
    let dram = DramConfig::ddr3_1600_paper();
    let ctrl = CtrlConfig {
        read_queue: depth,
        write_queue: depth,
        write_hi_watermark: (depth * 3 / 4).max(2),
        write_lo_watermark: depth / 4,
        ..CtrlConfig::paper_single_core()
    };
    let mut mem = MemorySystem::baseline(dram, ctrl);
    // Deterministic LCG over a 256 MB footprint: irregular banks and rows
    // with enough row reuse to exercise every FR-FCFS class.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    let mut done = Vec::new();
    let t0 = Instant::now();
    for now in 0..bus_cycles {
        // Keep the queues pegged: the scheduler always sees ~depth
        // entries, which is exactly the regime the flat scan paid for.
        while mem.queued_requests() < depth {
            let kind = if rng() % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let addr = (rng() % (1 << 22)) * 64;
            if mem
                .try_enqueue(
                    MemRequest {
                        addr,
                        kind,
                        core: 0,
                    },
                    now,
                )
                .is_none()
            {
                break;
            }
        }
        done.clear();
        mem.tick_into(now, &mut done);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let s = mem.stats();
    DepthRow {
        depth,
        bus_cycles,
        wall_s,
        passes: s.sched_passes,
        visits: s.sched_bank_visits,
        reads_done: s.read_latency_count,
    }
}

struct MixRow {
    cycles: u64,
    dense_s: f64,
    skip_s: f64,
    passes: u64,
    visits: u64,
}

/// Times the `w1` eight-core mix under both engines, with the same
/// parameters as the engine bench (so the cps is comparable to the
/// `BENCH_engine.json` row).
fn run_mix() -> MixRow {
    let p = ExpParams::bench();
    let p8 = ExpParams {
        insts_per_core: p.insts_per_core / 4,
        warmup_insts: p.warmup_insts / 4,
        ..p
    };
    let mix = &eight_core_mixes()[0];
    let cfg8 = SystemConfig::paper_eight_core(MechanismSpec::chargecache());
    let run = |engine: Engine| {
        let mut c = cfg8.clone();
        c.engine = engine;
        let t0 = Instant::now();
        let r = run_configured(c, &mix.apps, &p8).expect("paper configuration is valid");
        (r, t0.elapsed().as_secs_f64())
    };
    let (dense_r, dense_s) = run(Engine::PerCycle);
    let (skip_r, skip_s) = run(Engine::EventSkip);
    assert_eq!(
        dense_r.cpu_cycles, skip_r.cpu_cycles,
        "w1: engines disagree on simulated time"
    );
    assert_eq!(
        dense_r.ctrl, skip_r.ctrl,
        "w1: engines disagree on controller stats"
    );
    MixRow {
        cycles: dense_r.cpu_cycles,
        dense_s,
        skip_s,
        passes: skip_r.ctrl.sched_passes,
        visits: skip_r.ctrl.sched_bank_visits,
    }
}

fn main() {
    let tiny = std::env::var_os("CC_TINY").is_some_and(|v| v != "0" && !v.is_empty());
    let bus_cycles: u64 = if tiny { 40_000 } else { 2_000_000 };

    println!("\n=== scheduler pass cost vs read-queue depth ===\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "depth", "bus cycles", "passes", "ns/pass", "visits/pass", "reads done"
    );
    let mut rows = Vec::new();
    for depth in [8, 32, 64] {
        let r = run_depth(depth, bus_cycles);
        println!(
            "{:>6} {:>12} {:>12} {:>10.1} {:>12.2} {:>12}",
            r.depth,
            r.bus_cycles,
            r.passes,
            r.wall_s * 1e9 / r.passes as f64,
            r.visits as f64 / r.passes as f64,
            r.reads_done
        );
        rows.push(r);
    }

    println!("\n=== w1 (8-core) throughput, engine-bench parameters ===\n");
    let m = run_mix();
    let dense_cps = m.cycles as f64 / m.dense_s;
    let skip_cps = m.cycles as f64 / m.skip_s;
    println!(
        "sim cycles {} | per-cycle {:.3e} cps | event-skip {:.3e} cps | {:.0} passes ({:.2} bank visits/pass)",
        m.cycles,
        dense_cps,
        skip_cps,
        m.passes,
        m.visits as f64 / m.passes as f64
    );

    // Machine-readable record (the BENCH_scheduler.json format).
    let mut json = String::from("{\n  \"bench\": \"scheduler\",\n  \"depth_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"read_queue\": {}, \"bus_cycles\": {}, \"passes\": {}, \"ns_per_pass\": {:.1}, \"bank_visits_per_pass\": {:.2}}}{}\n",
            r.depth,
            r.bus_cycles,
            r.passes,
            r.wall_s * 1e9 / r.passes as f64,
            r.visits as f64 / r.passes as f64,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"w1_eight_core\": {{\"sim_cycles\": {}, \"per_cycle_cps\": {:.0}, \"event_skip_cps\": {:.0}, \"sched_passes\": {}, \"bank_visits_per_pass\": {:.2}}}\n}}",
        m.cycles, dense_cps, skip_cps, m.passes, m.visits as f64 / m.passes as f64
    ));
    println!("\n{json}");
}
