//! Device-family sensitivity: speedup versus DRAM family.
//!
//! The paper evaluates DDR3-1600 (Table 1) and argues (Section 7.2)
//! that ChargeCache applies to any DDR-derived interface. This figure
//! tests that claim against the device features DDR3 lacks: DDR4's
//! bank groups (tCCD_L/tRRD_L penalize same-group streams), LPDDR4X's
//! longer tRCD and per-bank refresh, and an HBM2-style stack's many
//! narrow channels with small rows. Each family swaps in its own
//! geometry, default speed bin, and refresh scope; the mechanisms ride
//! along unchanged.
//!
//! Expected shape: the speedup *persists* across families — highly-
//! charged rows are a property of access locality, not of the DDR3
//! interface. LPDDR4X should benefit the most (more tRCD cycles to
//! shave per hit); bank groups reorder but do not erase the gain; the
//! HBM2-style target's small rows raise activation counts, which gives
//! the HCRAC more opportunities per kilo-instruction.
//!
//! Pass `--json` (after `--` under `cargo bench`) to emit the sweep as
//! a `chargecache-sweep/v5` document instead of the table.

use bench::{banner, mean, pct, workloads};
use chargecache::MechanismSpec;
use dram::FamilySpec;
use sim::api::Experiment;
use sim::exp::ExpParams;

const FAMILIES: [&str; 4] = ["ddr3", "ddr4", "lpddr4x", "hbm2"];

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let p = ExpParams::bench();
    if !json {
        banner(
            "Family sensitivity: speedup vs device family (cc/ccnuat/ll)",
            "beyond the paper: Section 7.2 claims applicability across DDR-derived interfaces",
        );
    }

    let families: Vec<FamilySpec> = FAMILIES
        .iter()
        .map(|f| f.parse().expect("built-in family"))
        .collect();
    let mechanisms = [
        MechanismSpec::baseline(),
        MechanismSpec::chargecache(),
        MechanismSpec::cc_nuat(),
        MechanismSpec::lldram(),
    ];
    let sweep = Experiment::new()
        .workloads(workloads())
        .families(families.clone())
        .mechanisms(&mechanisms)
        .params(p)
        .run()
        .expect("built-in families are valid");

    if json {
        println!("{}", sweep.to_json());
        return;
    }

    println!(
        "{:<10} {:>14} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "family", "default bin", "tRCD", "base IPC", "cc", "ccnuat", "ll"
    );
    for f in &families {
        let family = f.to_string();
        let params = dram::family::resolve(f).expect("built-in family resolves");
        let bin = params.default_timing_spec();
        let mut base_ipc = Vec::new();
        let mut speedups = [Vec::new(), Vec::new(), Vec::new()];
        for w in workloads() {
            let base = sweep
                .cell_in(w.name, &family, "baseline", "paper")
                .expect("baseline cell");
            base_ipc.push(base.result().ipc(0));
            for (i, mech) in ["chargecache", "cc-nuat", "lldram"].iter().enumerate() {
                let c = sweep
                    .cell_in(w.name, &family, mech, "paper")
                    .expect("mechanism cell");
                speedups[i].push(c.result().ipc(0) / base.result().ipc(0).max(1e-9) - 1.0);
            }
        }
        println!(
            "{:<10} {:>14} {:>6} {:>10.4} {:>10} {:>10} {:>10}",
            family,
            bin.to_string(),
            bin.resolve().expect("family default bin resolves").trcd,
            mean(&base_ipc),
            pct(mean(&speedups[0])),
            pct(mean(&speedups[1])),
            pct(mean(&speedups[2]))
        );
    }
    println!("\ngeometry:");
    for f in &families {
        let params = dram::family::resolve(f).expect("built-in family resolves");
        println!("  {:<10} {}", f.to_string(), params.geometry_line());
    }
}
