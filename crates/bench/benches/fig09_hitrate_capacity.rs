//! Figure 9: ChargeCache hit rate versus capacity (1 ms caching
//! duration), with the unlimited-capacity ceiling.
//!
//! Paper results: 128 entries/core yields 38% (single-core) and 66%
//! (eight-core) hit rates; returns diminish toward the unlimited ceiling.

use bench::{all_eight, all_single, banner, mean, mixes, pct, sweep_mix_count};
use chargecache::{ChargeCacheConfig, MechanismKind};
use sim::exp::ExpParams;

const CAPACITIES: [usize; 7] = [32, 64, 128, 256, 512, 1024, 2048];

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 9: HCRAC hit rate vs capacity (1 ms duration)",
        "128 entries → 38% (1-core) / 66% (8-core); dashed = unlimited ceiling",
    );

    println!(
        "{:<10} {:>14} {:>14}",
        "entries", "1-core hit", "8-core hit"
    );
    let mix_list = mixes(sweep_mix_count());
    for entries in CAPACITIES {
        let cc = ChargeCacheConfig::with_entries(entries);
        let h1: Vec<f64> = all_single(MechanismKind::ChargeCache, &cc, &p)
            .iter()
            .filter_map(|(_, r)| r.hcrac_hit_rate())
            .collect();
        let h8: Vec<f64> = all_eight(MechanismKind::ChargeCache, &cc, &p, &mix_list)
            .iter()
            .filter_map(|(_, r)| r.hcrac_hit_rate())
            .collect();
        println!(
            "{:<10} {:>14} {:>14}",
            entries,
            pct(mean(&h1)),
            pct(mean(&h8))
        );
    }

    let unl = ChargeCacheConfig::unlimited();
    let h1: Vec<f64> = all_single(MechanismKind::ChargeCache, &unl, &p)
        .iter()
        .filter_map(|(_, r)| r.hcrac_hit_rate())
        .collect();
    let h8: Vec<f64> = all_eight(MechanismKind::ChargeCache, &unl, &p, &mix_list)
        .iter()
        .filter_map(|(_, r)| r.hcrac_hit_rate())
        .collect();
    println!(
        "{:<10} {:>14} {:>14}",
        "unlimited",
        pct(mean(&h1)),
        pct(mean(&h8))
    );
}
