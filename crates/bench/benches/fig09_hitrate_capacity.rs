//! Figure 9: ChargeCache hit rate versus capacity (1 ms caching
//! duration), with the unlimited-capacity ceiling.
//!
//! Paper results: 128 entries/core yields 38% (single-core) and 66%
//! (eight-core) hit rates; returns diminish toward the unlimited ceiling.
//!
//! One `sim::api` grid per core count: the capacity axis (plus the
//! unlimited ceiling) is a variant list, and every point shares the
//! memoized run cache.

use bench::{banner, mean, mixes, pct, sweep_mix_count, workloads};
use chargecache::{MechanismSpec, ParamValue};
use sim::api::{Experiment, SweepResult, Variant};
use sim::exp::ExpParams;

const CAPACITIES: [usize; 7] = [32, 64, 128, 256, 512, 1024, 2048];

fn capacity_variants() -> Vec<Variant> {
    let mut vs: Vec<Variant> = CAPACITIES.iter().map(|&n| Variant::entries(n)).collect();
    // The dashed unlimited-capacity ceiling: spec parameters, like every
    // other point on the axis.
    vs.push(Variant::new("unlimited", |cfg| {
        cfg.mechanism.set("unlimited", ParamValue::Bool(true));
        cfg.mechanism
            .set("invalidation", ParamValue::Str("exact".into()));
    }));
    vs
}

fn mean_hit_rate(sweep: &SweepResult, variant: &str) -> f64 {
    let hs: Vec<f64> = sweep
        .cells_of("chargecache", variant)
        .filter_map(|c| c.result().hcrac_hit_rate())
        .collect();
    mean(&hs)
}

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 9: HCRAC hit rate vs capacity (1 ms duration)",
        "128 entries → 38% (1-core) / 66% (8-core); dashed = unlimited ceiling",
    );

    println!(
        "{:<10} {:>14} {:>14}",
        "entries", "1-core hit", "8-core hit"
    );
    let sweep1 = Experiment::new()
        .workloads(workloads())
        .mechanism(MechanismSpec::chargecache())
        .variants(capacity_variants())
        .params(p)
        .run()
        .expect("paper configuration is valid");
    let sweep8 = Experiment::new()
        .mixes(mixes(sweep_mix_count()))
        .mechanism(MechanismSpec::chargecache())
        .variants(capacity_variants())
        .params(p)
        .run()
        .expect("paper configuration is valid");
    for entries in CAPACITIES {
        let label = entries.to_string();
        println!(
            "{:<10} {:>14} {:>14}",
            entries,
            pct(mean_hit_rate(&sweep1, &label)),
            pct(mean_hit_rate(&sweep8, &label))
        );
    }
    println!(
        "{:<10} {:>14} {:>14}",
        "unlimited",
        pct(mean_hit_rate(&sweep1, "unlimited")),
        pct(mean_hit_rate(&sweep8, "unlimited"))
    );
}
