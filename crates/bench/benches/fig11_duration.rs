//! Figure 11: speedup and hit rate versus caching duration.
//!
//! Paper result: longer caching durations raise the hit rate only
//! slightly but weaken the timing reductions (Table 2), so 1 ms is the
//! empirically best duration; speedup falls monotonically beyond it.
//!
//! The duration axis is a `sim::api` variant list; the
//! duration-independent baselines are shared, memoized runs.

use bench::{banner, mean, mixes, pct, sweep_mix_count, workloads};
use bitline::derive::CycleQuantized;
use chargecache::MechanismSpec;
use sim::api::{Experiment, Variant};
use sim::exp::ExpParams;

const DURATIONS_MS: [f64; 4] = [1.0, 4.0, 8.0, 16.0];

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 11: speedup and HCRAC hit rate vs caching duration",
        "1 ms is best; longer durations trade timing margin for few extra hits",
    );

    let specs = workloads();
    let mix_list = mixes(sweep_mix_count());
    let base1 = Experiment::new()
        .workloads(specs.clone())
        .mechanism(MechanismSpec::baseline())
        .params(p)
        .run()
        .expect("paper configuration is valid");
    let base8 = Experiment::new()
        .mixes(mix_list.clone())
        .mechanism(MechanismSpec::baseline())
        .params(p)
        .run()
        .expect("paper configuration is valid");

    let durations = || DURATIONS_MS.iter().map(|&d| Variant::duration_ms(d));
    let cc1 = Experiment::new()
        .workloads(specs)
        .mechanism(MechanismSpec::chargecache())
        .variants(durations())
        .params(p)
        .run()
        .expect("paper configuration is valid");
    let cc8 = Experiment::new()
        .mixes(mix_list)
        .mechanism(MechanismSpec::chargecache())
        .variants(durations())
        .params(p)
        .run()
        .expect("paper configuration is valid");

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "duration", "ΔtRCD/ΔtRAS", "1c spdup", "1c hit", "8c spdup", "8c hit", ""
    );
    for d in DURATIONS_MS {
        let label = format!("{d} ms");
        // Same derivation the chargecache factory applies (its tck comes
        // from the cell's DRAM timing), so the printed pair matches what
        // the cells actually ran.
        let tck = sim::SystemConfig::paper_single_core(MechanismSpec::chargecache())
            .dram
            .timing
            .tck_ns;
        let red = CycleQuantized::for_duration_ms(d, tck);
        let mut s1 = Vec::new();
        let mut h1 = Vec::new();
        for b in &base1.cells {
            let c = cc1
                .cell(&b.subject, "chargecache", &label)
                .expect("duration cell");
            s1.push(c.result().ipc(0) / b.result().ipc(0).max(1e-9) - 1.0);
            if let Some(h) = c.result().hcrac_hit_rate() {
                h1.push(h);
            }
        }
        let mut s8 = Vec::new();
        let mut h8 = Vec::new();
        for b in &base8.cells {
            let c = cc8
                .cell(&b.subject, "chargecache", &label)
                .expect("duration cell");
            s8.push(c.result().ipc_sum() / b.result().ipc_sum().max(1e-9) - 1.0);
            if let Some(h) = c.result().hcrac_hit_rate() {
                h8.push(h);
            }
        }
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            label,
            format!("{}/{}", red.trcd_reduction, red.tras_reduction),
            pct(mean(&s1)),
            pct(mean(&h1)),
            pct(mean(&s8)),
            pct(mean(&h8))
        );
    }
}
