//! Figure 11: speedup and hit rate versus caching duration.
//!
//! Paper result: longer caching durations raise the hit rate only
//! slightly but weaken the timing reductions (Table 2), so 1 ms is the
//! empirically best duration; speedup falls monotonically beyond it.

use bench::{all_eight, all_single, banner, mean, mixes, pct, sweep_mix_count};
use chargecache::{ChargeCacheConfig, MechanismKind};
use sim::exp::ExpParams;

const DURATIONS_MS: [f64; 4] = [1.0, 4.0, 8.0, 16.0];

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 11: speedup and HCRAC hit rate vs caching duration",
        "1 ms is best; longer durations trade timing margin for few extra hits",
    );

    let base1: Vec<f64> = all_single(MechanismKind::Baseline, &ChargeCacheConfig::paper(), &p)
        .iter()
        .map(|(_, r)| r.ipc(0))
        .collect();
    let mix_list = mixes(sweep_mix_count());
    let base8: Vec<f64> = all_eight(
        MechanismKind::Baseline,
        &ChargeCacheConfig::paper(),
        &p,
        &mix_list,
    )
    .iter()
    .map(|(_, r)| r.ipc_sum())
    .collect();

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "duration", "ΔtRCD/ΔtRAS", "1c spdup", "1c hit", "8c spdup", "8c hit", ""
    );
    for d in DURATIONS_MS {
        let cc = ChargeCacheConfig::with_duration_ms(d);
        let r1 = all_single(MechanismKind::ChargeCache, &cc, &p);
        let s1: Vec<f64> = r1
            .iter()
            .zip(&base1)
            .map(|((_, r), &b)| r.ipc(0) / b.max(1e-9) - 1.0)
            .collect();
        let h1: Vec<f64> = r1.iter().filter_map(|(_, r)| r.hcrac_hit_rate()).collect();
        let r8 = all_eight(MechanismKind::ChargeCache, &cc, &p, &mix_list);
        let s8: Vec<f64> = r8
            .iter()
            .zip(&base8)
            .map(|((_, r), &b)| r.ipc_sum() / b.max(1e-9) - 1.0)
            .collect();
        let h8: Vec<f64> = r8.iter().filter_map(|(_, r)| r.hcrac_hit_rate()).collect();
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            format!("{d} ms"),
            format!(
                "{}/{}",
                cc.reductions.trcd_reduction, cc.reductions.tras_reduction
            ),
            pct(mean(&s1)),
            pct(mean(&h1)),
            pct(mean(&s8)),
            pct(mean(&h8))
        );
    }
}
