//! Section 6.3: hardware area and power overhead of ChargeCache.
//!
//! Paper results (Equations 1 and 2, McPAT at 22 nm): 5376 bytes total
//! storage for the 8-core / 2-channel / 128-entry configuration
//! (672 bytes per core), 0.022 mm² (0.24% of a 4 MB LLC) and 0.149 mW
//! (0.23% of the LLC).

use bench::banner;
use chargecache::OverheadModel;

fn main() {
    banner(
        "Section 6.3: ChargeCache hardware overhead",
        "5376 B storage, 0.022 mm² (0.24% of 4MB LLC), 0.149 mW (0.23%)",
    );

    let m = OverheadModel::paper_8core();
    println!(
        "entry size (Equation 2):  {} bits (+{} LRU)",
        m.entry_size_bits(),
        m.lru_bits()
    );
    println!("total storage (Equation 1): {} bytes", m.storage_bytes());
    println!(
        "storage per core:          {} bytes",
        m.storage_bytes_per_core()
    );
    println!("area @22nm:                {:.4} mm²", m.area_mm2());
    println!(
        "area vs 4MB LLC:           {:.2}%",
        m.area_fraction_of_4mb_llc() * 100.0
    );
    println!("average power:             {:.3} mW", m.power_mw());
    println!(
        "power vs 4MB LLC:          {:.2}%",
        m.power_fraction_of_4mb_llc() * 100.0
    );

    println!("\ncapacity sweep (Section 6.4.1 storage column):");
    println!(
        "{:>8} {:>14} {:>12} {:>12}",
        "entries", "bytes/core", "area (mm²)", "power (mW)"
    );
    for entries in [32u32, 64, 128, 256, 512, 1024] {
        let m = OverheadModel {
            entries,
            ..OverheadModel::paper_8core()
        };
        println!(
            "{:>8} {:>14} {:>12.4} {:>12.3}",
            entries,
            m.storage_bytes_per_core(),
            m.area_mm2(),
            m.power_mw()
        );
    }
}
