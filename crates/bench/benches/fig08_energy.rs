//! Figure 8: DRAM energy reduction of ChargeCache over the baseline.
//!
//! Paper results: average/maximum reductions of 1.8%/6.9% (single-core)
//! and 7.9%/14.1% (eight-core). The saving comes from shorter execution
//! for the same command work (less background + refresh energy).

use bench::{all_eight, all_single, banner, mean, mixes, pct};
use chargecache::MechanismSpec;
use sim::exp::ExpParams;

fn main() {
    let p = ExpParams::bench();
    banner(
        "Figure 8: DRAM energy reduction of ChargeCache",
        "1-core avg 1.8% / max 6.9%; 8-core avg 7.9% / max 14.1%",
    );

    println!("--- single-core ---");
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "workload", "base (mJ)", "CC (mJ)", "saving"
    );
    let base = all_single(&MechanismSpec::baseline(), &p);
    let ccr = all_single(&MechanismSpec::chargecache(), &p);
    let mut savings = Vec::new();
    for ((spec, b), (_, c)) in base.iter().zip(&ccr) {
        let (eb, ec) = (b.energy.total_mj(), c.energy.total_mj());
        let saving = 1.0 - ec / eb.max(1e-12);
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>10}",
            spec.name,
            eb,
            ec,
            pct(saving)
        );
        savings.push(saving);
    }
    let max1 = savings.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "AVG saving: {}   MAX saving: {}\n",
        pct(mean(&savings)),
        pct(max1)
    );

    println!("--- eight-core ---");
    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "mix", "base (mJ)", "CC (mJ)", "saving"
    );
    let mix_list = mixes(20);
    let base8 = all_eight(&MechanismSpec::baseline(), &p, &mix_list);
    let cc8 = all_eight(&MechanismSpec::chargecache(), &p, &mix_list);
    let mut savings8 = Vec::new();
    for ((mix, b), (_, c)) in base8.iter().zip(&cc8) {
        let (eb, ec) = (b.energy.total_mj(), c.energy.total_mj());
        let saving = 1.0 - ec / eb.max(1e-12);
        println!(
            "{:<6} {:>12.4} {:>12.4} {:>10}",
            mix.name,
            eb,
            ec,
            pct(saving)
        );
        savings8.push(saving);
    }
    let max8 = savings8.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "AVG saving: {}   MAX saving: {}",
        pct(mean(&savings8)),
        pct(max8)
    );
}
