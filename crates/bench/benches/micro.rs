//! Micro-benchmarks of the performance-critical components: HCRAC
//! operations, DRAM command checking/issue, LLC accesses and whole system
//! steps. These guard the simulator's own throughput.
//!
//! Self-timed (no external harness): each case runs a calibration pass,
//! then enough iterations for a stable wall-clock read, and reports
//! ns/op. Run with `cargo bench -p bench --bench micro`.

use std::hint::black_box;
use std::time::Instant;

use chargecache::{ChargeCache, ChargeCacheConfig, Hcrac, LatencyMechanism, MechanismSpec, RowKey};
use cpu::{Llc, LlcConfig, MemOp, TraceEntry, VecTrace};
use dram::{BankLoc, Command, DramConfig, DramDevice, TimingParams};
use sim::{System, SystemConfig};

/// Times `f` (one op per call) and prints ns/op.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Calibrate to ~50 ms of work.
    let mut iters = 16u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 50 || iters >= 1 << 28 {
            let ns = dt.as_nanos() as f64 / iters as f64;
            println!("{name:<32} {ns:>12.1} ns/op   ({iters} iters)");
            return;
        }
        iters *= 4;
    }
}

fn bench_hcrac() {
    bench("hcrac/lookup_hit", {
        let mut h = Hcrac::new(128, 2);
        for r in 0..128 {
            h.insert(RowKey::new(0, 0, 0, r), 0);
        }
        let mut i = 0u32;
        move || {
            i = (i + 1) % 128;
            h.lookup(RowKey::new(0, 0, 0, i), 100)
        }
    });
    bench("hcrac/insert_evict", {
        let mut h = Hcrac::new(128, 2);
        let mut r = 0u32;
        move || {
            r = r.wrapping_add(1);
            h.insert(RowKey::new(0, 0, 0, r), u64::from(r));
        }
    });
    bench("hcrac/mechanism_act_pre_cycle", {
        let t = TimingParams::ddr3_1600();
        let mut cc = ChargeCache::new(ChargeCacheConfig::paper(), &t, 1);
        let mut now = 0u64;
        move || {
            now += 40;
            cc.tick(now);
            let k = RowKey::new(0, 0, (now / 40 % 8) as u8, (now % 4096) as u32);
            let timings = cc.on_activate(now, 0, k, u64::MAX);
            cc.on_precharge(now + 28, 0, k);
            timings
        }
    });
}

fn bench_dram() {
    bench("dram/act_rd_pre_cycle_x32", || {
        let cfg = DramConfig::ddr3_1600_paper();
        let spec = cfg.timing.act_timings();
        let mut dev = DramDevice::new(cfg);
        let loc = BankLoc {
            channel: 0,
            rank: 0,
            bank: 0,
        };
        let mut now = 0;
        for row in 0..32 {
            let act = Command::act(loc, row);
            now = dev.earliest_issue(&act, now).unwrap();
            dev.issue(&act, now, spec);
            let rd = Command::rd(loc, 0);
            now = dev.earliest_issue(&rd, now).unwrap();
            dev.issue(&rd, now, spec);
            let pre = Command::pre(loc);
            now = dev.earliest_issue(&pre, now).unwrap();
            dev.issue(&pre, now, spec);
        }
        now
    });
    bench("dram/earliest_issue_check", {
        let cfg = DramConfig::ddr3_1600_paper();
        let dev = DramDevice::new(cfg);
        let act = Command::act(
            BankLoc {
                channel: 0,
                rank: 0,
                bank: 3,
            },
            77,
        );
        move || dev.earliest_issue(&act, 1000)
    });
}

fn bench_llc() {
    bench("llc/read_hit", {
        let mut llc = Llc::new(LlcConfig::paper_4mb());
        for i in 0..1024u64 {
            llc.fill(i * 64);
        }
        let mut i = 0u64;
        move || {
            i = (i + 1) % 1024;
            llc.read(i * 64)
        }
    });
}

fn bench_system() {
    let entries: Vec<TraceEntry> = (0..4096)
        .map(|i| TraceEntry {
            nonmem: 3,
            op: Some(MemOp::Load((i % 512) * 64 * 97)),
        })
        .collect();
    bench("system/step_1k_cycles", || {
        let mut sys = System::new(
            SystemConfig::paper_single_core(MechanismSpec::chargecache()),
            vec![Box::new(VecTrace::looping(entries.clone()))],
        );
        for _ in 0..1000 {
            sys.step();
        }
        sys.now()
    });
}

fn main() {
    println!("\n=== micro-benchmarks (ns/op, lower is better) ===\n");
    bench_hcrac();
    bench_dram();
    bench_llc();
    bench_system();
}
