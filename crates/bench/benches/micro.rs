//! Criterion micro-benchmarks of the performance-critical components:
//! HCRAC operations, DRAM command checking/issue, LLC accesses and whole
//! system steps. These guard the simulator's own throughput.

use chargecache::{ChargeCache, ChargeCacheConfig, LatencyMechanism, Hcrac, MechanismKind, RowKey};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cpu::{Llc, LlcConfig, MemOp, TraceEntry, VecTrace};
use dram::{BankLoc, Command, DramConfig, DramDevice, TimingParams};
use sim::{System, SystemConfig};
use std::hint::black_box;

fn bench_hcrac(c: &mut Criterion) {
    let mut g = c.benchmark_group("hcrac");
    g.bench_function("lookup_hit", |b| {
        let mut h = Hcrac::new(128, 2);
        for r in 0..128 {
            h.insert(RowKey::new(0, 0, 0, r), 0);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 128;
            black_box(h.lookup(RowKey::new(0, 0, 0, i), 100))
        });
    });
    g.bench_function("insert_evict", |b| {
        let mut h = Hcrac::new(128, 2);
        let mut r = 0u32;
        b.iter(|| {
            r = r.wrapping_add(1);
            h.insert(RowKey::new(0, 0, 0, r), u64::from(r));
        });
    });
    g.bench_function("mechanism_act_pre_cycle", |b| {
        let t = TimingParams::ddr3_1600();
        let mut cc = ChargeCache::new(ChargeCacheConfig::paper(), &t, 1);
        let mut now = 0u64;
        b.iter(|| {
            now += 40;
            cc.tick(now);
            let k = RowKey::new(0, 0, (now / 40 % 8) as u8, (now % 4096) as u32);
            let timings = cc.on_activate(now, 0, k, u64::MAX);
            cc.on_precharge(now + 28, 0, k);
            black_box(timings)
        });
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.bench_function("act_rd_pre_cycle", |b| {
        let cfg = DramConfig::ddr3_1600_paper();
        let spec = cfg.timing.act_timings();
        b.iter_batched(
            || DramDevice::new(cfg.clone()),
            |mut dev| {
                let loc = BankLoc { channel: 0, rank: 0, bank: 0 };
                let mut now = 0;
                for row in 0..32 {
                    let act = Command::act(loc, row);
                    now = dev.earliest_issue(&act, now).unwrap();
                    dev.issue(&act, now, spec);
                    let rd = Command::rd(loc, 0);
                    now = dev.earliest_issue(&rd, now).unwrap();
                    dev.issue(&rd, now, spec);
                    let pre = Command::pre(loc);
                    now = dev.earliest_issue(&pre, now).unwrap();
                    dev.issue(&pre, now, spec);
                }
                black_box(now)
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("earliest_issue_check", |b| {
        let cfg = DramConfig::ddr3_1600_paper();
        let dev = DramDevice::new(cfg);
        let act = Command::act(BankLoc { channel: 0, rank: 0, bank: 3 }, 77);
        b.iter(|| black_box(dev.earliest_issue(&act, 1000)));
    });
    g.finish();
}

fn bench_llc(c: &mut Criterion) {
    c.bench_function("llc/read_hit", |b| {
        let mut llc = Llc::new(LlcConfig::paper_4mb());
        for i in 0..1024u64 {
            llc.fill(i * 64);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(llc.read(i * 64))
        });
    });
}

fn bench_system(c: &mut Criterion) {
    c.bench_function("system/step_1k_cycles", |b| {
        let entries: Vec<TraceEntry> = (0..4096)
            .map(|i| TraceEntry {
                nonmem: 3,
                op: Some(MemOp::Load((i % 512) * 64 * 97)),
            })
            .collect();
        b.iter_batched(
            || {
                System::new(
                    SystemConfig::paper_single_core(MechanismKind::ChargeCache),
                    vec![Box::new(VecTrace::looping(entries.clone()))],
                )
            },
            |mut sys| {
                for _ in 0..1000 {
                    sys.step();
                }
                black_box(sys.now())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_hcrac, bench_dram, bench_llc, bench_system);
criterion_main!(benches);
