//! Ablations of the design decisions DESIGN.md calls out:
//!
//! * **D1** — periodic (IIC/EC) vs exact per-entry invalidation: the
//!   paper claims the cheap scheme loses almost nothing.
//! * **D3** — HCRAC associativity: the paper reports 2-way within 2% of
//!   fully associative.
//! * **D5** — per-core private HCRACs vs one shared HCRAC of the same
//!   total capacity (the paper's footnote 7 design option).
//!
//! All three ablations are one `sim::api` grid over the eight-core
//! mixes: variants with identical resulting configurations (periodic ≡
//! 2-way ≡ private ≡ paper) deduplicate in the memoized run cache, so
//! the paper point is simulated once.

use bench::{banner, mean, mixes, pct, sweep_mix_count, workloads};
use chargecache::{MechanismSpec, ParamValue};
use memctrl::SchedPolicy;
use sim::api::{Experiment, SweepResult, Variant};
use sim::exp::ExpParams;

/// A labelled mechanism-spec patch (the ablation axes are all spec
/// parameters of the `chargecache` mechanism).
fn cc_variant(label: &str, key: &'static str, value: ParamValue) -> Variant {
    Variant::param_labelled(label, key, value)
}

fn hit_rate(sweep: &SweepResult, variant: &str) -> f64 {
    let hs: Vec<f64> = sweep
        .cells_of("chargecache", variant)
        .filter_map(|c| c.result().hcrac_hit_rate())
        .collect();
    mean(&hs)
}

fn main() {
    let p = ExpParams::bench();
    let mix_list = mixes(sweep_mix_count());

    let mut variants = vec![
        cc_variant(
            "periodic",
            "invalidation",
            ParamValue::Str("periodic".into()),
        ),
        cc_variant("exact", "invalidation", ParamValue::Str("exact".into())),
    ];
    for ways in [1usize, 2, 4, 8, 0] {
        variants.push(cc_variant(
            &format!("ways-{ways}"),
            "ways",
            ParamValue::Int(ways as i64),
        ));
    }
    variants.push(cc_variant("private", "shared", ParamValue::Bool(false)));
    variants.push(cc_variant("shared", "shared", ParamValue::Bool(true)));
    let sweep = Experiment::new()
        .mixes(mix_list)
        .mechanism(MechanismSpec::chargecache())
        .variants(variants)
        .params(p)
        .run()
        .expect("paper configuration is valid");

    banner(
        "Ablation D1: periodic (IIC/EC) vs exact invalidation",
        "the two-counter scheme loses a negligible amount of hit rate",
    );
    let hp = hit_rate(&sweep, "periodic");
    let he = hit_rate(&sweep, "exact");
    println!("periodic IIC/EC hit rate: {}", pct(hp));
    println!("exact expiry hit rate:    {}", pct(he));
    println!("premature-invalidation loss: {}\n", pct((he - hp).max(0.0)));

    banner(
        "Ablation D3: HCRAC associativity",
        "2-way is within ~2% of fully associative",
    );
    println!("{:>8} {:>12}", "ways", "hit rate");
    for ways in [1usize, 2, 4, 8, 0] {
        let label = if ways == 0 {
            "full".to_string()
        } else {
            ways.to_string()
        };
        println!(
            "{:>8} {:>12}",
            label,
            pct(hit_rate(&sweep, &format!("ways-{ways}")))
        );
    }
    println!();

    banner(
        "Ablation D5: private per-core HCRACs vs shared",
        "footnote 7 leaves sharing as future work; this quantifies it",
    );
    println!("private (128/core): {}", pct(hit_rate(&sweep, "private")));
    println!("shared (1024 total): {}", pct(hit_rate(&sweep, "shared")));
    println!("(an unpartitioned shared HCRAC lets one conflict-heavy app");
    println!(" evict everyone else's entries — interference the per-core");
    println!(" replication sidesteps)");
    println!();

    banner(
        "Ablation: scheduler composition (paper Section 8)",
        "ChargeCache helps under any scheduler; FR-FCFS is the Table 1 default",
    );
    // Single-core sweep: {FCFS, FR-FCFS} × {baseline, ChargeCache}.
    let sched_sweep = Experiment::new()
        .workloads(workloads())
        .mechanisms(&[MechanismSpec::baseline(), MechanismSpec::chargecache()])
        .variants([
            Variant::new("Fcfs", |cfg| cfg.ctrl.scheduler = SchedPolicy::Fcfs),
            Variant::new("FrFcfs", |cfg| cfg.ctrl.scheduler = SchedPolicy::FrFcfs),
        ])
        .params(p)
        .run()
        .expect("paper configuration is valid");
    let mut gains = Vec::new();
    for sched in [SchedPolicy::Fcfs, SchedPolicy::FrFcfs] {
        let label = format!("{sched:?}");
        let speedups: Vec<f64> = sched_sweep
            .cells_of("baseline", &label)
            .zip(sched_sweep.cells_of("chargecache", &label))
            .filter(|(b, _)| b.result().ipc(0) > 0.0)
            .map(|(b, c)| c.result().ipc(0) / b.result().ipc(0) - 1.0)
            .collect();
        let g = mean(&speedups);
        println!("{sched:?}: ChargeCache gains {} on average", pct(g));
        gains.push(g);
    }
    println!("(positive under both schedulers: the mechanism composes)");
    assert!(gains.iter().all(|&g| g > -0.005));
}
