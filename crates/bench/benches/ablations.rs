//! Ablations of the design decisions DESIGN.md calls out:
//!
//! * **D1** — periodic (IIC/EC) vs exact per-entry invalidation: the
//!   paper claims the cheap scheme loses almost nothing.
//! * **D3** — HCRAC associativity: the paper reports 2-way within 2% of
//!   fully associative.
//! * **D5** — per-core private HCRACs vs one shared HCRAC of the same
//!   total capacity (the paper's footnote 7 design option).

use bench::{all_eight, banner, mean, mixes, pct, sweep_mix_count, workloads};
use chargecache::{ChargeCacheConfig, InvalidationPolicy, MechanismKind};
use memctrl::SchedPolicy;
use sim::exp::{default_threads, par_map, run_configured, ExpParams};
use sim::SystemConfig;

fn hit_rate(cc: &ChargeCacheConfig, p: &ExpParams, mix_list: &[traces::MixSpec]) -> f64 {
    let hs: Vec<f64> = all_eight(MechanismKind::ChargeCache, cc, p, mix_list)
        .iter()
        .filter_map(|(_, r)| r.hcrac_hit_rate())
        .collect();
    mean(&hs)
}

fn main() {
    let p = ExpParams::bench();
    let mix_list = mixes(sweep_mix_count());

    banner(
        "Ablation D1: periodic (IIC/EC) vs exact invalidation",
        "the two-counter scheme loses a negligible amount of hit rate",
    );
    let mut periodic = ChargeCacheConfig::paper();
    periodic.invalidation = InvalidationPolicy::Periodic;
    let mut exact = ChargeCacheConfig::paper();
    exact.invalidation = InvalidationPolicy::Exact;
    let hp = hit_rate(&periodic, &p, &mix_list);
    let he = hit_rate(&exact, &p, &mix_list);
    println!("periodic IIC/EC hit rate: {}", pct(hp));
    println!("exact expiry hit rate:    {}", pct(he));
    println!("premature-invalidation loss: {}\n", pct((he - hp).max(0.0)));

    banner(
        "Ablation D3: HCRAC associativity",
        "2-way is within ~2% of fully associative",
    );
    println!("{:>8} {:>12}", "ways", "hit rate");
    for ways in [1usize, 2, 4, 8, 0] {
        let mut cc = ChargeCacheConfig::paper();
        cc.ways = ways;
        let label = if ways == 0 {
            "full".to_string()
        } else {
            ways.to_string()
        };
        println!("{:>8} {:>12}", label, pct(hit_rate(&cc, &p, &mix_list)));
    }
    println!();

    banner(
        "Ablation D5: private per-core HCRACs vs shared",
        "footnote 7 leaves sharing as future work; this quantifies it",
    );
    let mut private = ChargeCacheConfig::paper();
    private.shared = false;
    let mut shared = ChargeCacheConfig::paper();
    shared.shared = true;
    println!(
        "private (128/core): {}",
        pct(hit_rate(&private, &p, &mix_list))
    );
    println!(
        "shared (1024 total): {}",
        pct(hit_rate(&shared, &p, &mix_list))
    );
    println!("(an unpartitioned shared HCRAC lets one conflict-heavy app");
    println!(" evict everyone else's entries — interference the per-core");
    println!(" replication sidesteps)");
    println!();

    banner(
        "Ablation: scheduler composition (paper Section 8)",
        "ChargeCache helps under any scheduler; FR-FCFS is the Table 1 default",
    );
    // Single-core sweep: {FCFS, FR-FCFS} × {baseline, ChargeCache}.
    let specs = workloads();
    let mut gains = Vec::new();
    for sched in [SchedPolicy::Fcfs, SchedPolicy::FrFcfs] {
        let run = |mech: MechanismKind| {
            par_map(specs.clone(), default_threads(), |spec| {
                let mut cfg = SystemConfig::paper_single_core(mech);
                cfg.ctrl.scheduler = sched;
                run_configured(cfg, std::slice::from_ref(&spec), &p).ipc(0)
            })
        };
        let base = run(MechanismKind::Baseline);
        let ccr = run(MechanismKind::ChargeCache);
        let speedups: Vec<f64> = base
            .iter()
            .zip(&ccr)
            .filter(|(&b, _)| b > 0.0)
            .map(|(&b, &c)| c / b - 1.0)
            .collect();
        let g = mean(&speedups);
        println!("{sched:?}: ChargeCache gains {} on average", pct(g));
        gains.push(g);
    }
    println!("(positive under both schedulers: the mechanism composes)");
    assert!(gains.iter().all(|&g| g > -0.005));
}
