//! Shared helpers for the per-figure benchmark harnesses.
//!
//! Every `benches/figNN_*.rs` target regenerates one table or figure of
//! the ChargeCache paper: it declares its sweep as a [`sim::api::Experiment`]
//! (directly, or through the thin wrappers below), runs it at the default
//! (laptop) scale — `CC_SCALE=N` scales run lengths by `N`, `CC_TINY=1`
//! shrinks them to the CI smoke scale — and prints the same rows/series
//! the paper reports. Absolute numbers differ from the paper (synthetic
//! workloads, scaled run lengths; see DESIGN.md), but the orderings and
//! rough factors are the reproduction targets recorded in EXPERIMENTS.md.
//!
//! All sweeps share `sim::api`'s process-wide memoized run cache, so
//! repeated baselines and alone-IPC runs are simulated once per process
//! no matter how many figures or sweep points request them.

use chargecache::MechanismSpec;
use sim::api::Experiment;
use sim::exp::ExpParams;
use sim::RunResult;
use traces::{eight_core_mixes, single_core_workloads, MixSpec, WorkloadSpec};

/// Number of eight-core mixes used by the expensive sweep figures
/// (9, 10, 11). The headline figures (3, 4, 7, 8) always use all 20.
pub fn sweep_mix_count() -> usize {
    std::env::var("CC_SWEEP_MIXES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

/// Prints a figure banner.
pub fn banner(title: &str, paper_summary: &str) {
    println!("\n=== {title} ===");
    println!("paper: {paper_summary}");
    println!("(synthetic workloads; compare shapes/orderings, not absolutes)\n");
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Arithmetic mean (the paper reports arithmetic means).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// All 22 single-core workloads.
pub fn workloads() -> Vec<WorkloadSpec> {
    single_core_workloads()
}

/// The first `n` eight-core mixes.
pub fn mixes(n: usize) -> Vec<MixSpec> {
    eight_core_mixes().into_iter().take(n).collect()
}

/// Runs every single-core workload under `mechanism`, in parallel
/// (memoized). Parameters travel inside the spec
/// (`"chargecache(entries=64)".parse()`).
pub fn all_single(mechanism: &MechanismSpec, p: &ExpParams) -> Vec<(WorkloadSpec, RunResult)> {
    let specs = workloads();
    let sweep = Experiment::new()
        .workloads(specs.clone())
        .mechanism(mechanism.clone())
        .params(*p)
        .run()
        .expect("paper configuration is valid");
    specs
        .into_iter()
        .zip(
            sweep
                .cells
                .into_iter()
                .map(|c| c.outcome.expect("sweep cell failed")),
        )
        .collect()
}

/// Runs every given mix under `mechanism`, in parallel (memoized).
pub fn all_eight(
    mechanism: &MechanismSpec,
    p: &ExpParams,
    mix_list: &[MixSpec],
) -> Vec<(MixSpec, RunResult)> {
    let sweep = Experiment::new()
        .mixes(mix_list.to_vec())
        .mechanism(mechanism.clone())
        .params(*p)
        .run()
        .expect("paper configuration is valid");
    mix_list
        .iter()
        .cloned()
        .zip(
            sweep
                .cells
                .into_iter()
                .map(|c| c.outcome.expect("sweep cell failed")),
        )
        .collect()
}

/// Per-application alone-IPCs under `mechanism` (weighted-speedup
/// denominators), keyed by workload name.
pub fn alone_ipcs(
    mechanism: &MechanismSpec,
    p: &ExpParams,
) -> std::collections::HashMap<&'static str, f64> {
    all_single(mechanism, p)
        .into_iter()
        .map(|(spec, r)| (spec.name, r.ipc(0)))
        .collect()
}

/// Weighted speedup of an eight-core result against alone-IPCs.
pub fn ws_of(
    mix: &MixSpec,
    r: &RunResult,
    alone: &std::collections::HashMap<&'static str, f64>,
) -> f64 {
    let shared: Vec<f64> = (0..mix.apps.len()).map(|c| r.ipc(c)).collect();
    let alone: Vec<f64> = mix.apps.iter().map(|a| alone[a.name].max(1e-9)).collect();
    sim::weighted_speedup(&shared, &alone)
}
