//! IDD-based DDR3 energy model — the reproduction's DRAMPower substitute
//! (DESIGN.md substitution S3).
//!
//! Follows the standard Micron power-calculation methodology: per-command
//! charge packets for activate/precharge pairs, read/write bursts and
//! refreshes, plus background power integrated over the reconstructed
//! bank-state timeline (active-standby `IDD3N` while any bank is open,
//! precharged-standby `IDD2N` otherwise). Inputs are the command log the
//! [`dram::DramDevice`] records and the run length.
//!
//! The first-order effect the paper's Figure 8 reports flows through this
//! model directly: a mechanism that shortens execution time shrinks the
//! time-proportional background and refresh energy for the same command
//! work.
//!
//! # Example
//!
//! ```
//! use dram::DramConfig;
//! use drampower::EnergyModel;
//!
//! let model = EnergyModel::ddr3_4gb_x8(DramConfig::ddr3_1600_paper());
//! let energy = model.energy(&[], 800_000); // 1 ms idle
//! assert!(energy.background_pj > 0.0);
//! assert_eq!(energy.activate_pj, 0.0);
//! ```

use dram::{CommandKind, CommandRecord, DramConfig};

/// Datasheet current parameters, in milliamps per device, plus geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddParams {
    /// One-bank activate-precharge current.
    pub idd0_ma: f64,
    /// Precharged standby current.
    pub idd2n_ma: f64,
    /// Active standby current.
    pub idd3n_ma: f64,
    /// Burst read current.
    pub idd4r_ma: f64,
    /// Burst write current.
    pub idd4w_ma: f64,
    /// Burst refresh current.
    pub idd5b_ma: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// DRAM devices ganged per rank (x8 devices on a 64-bit bus → 8).
    pub devices_per_rank: u32,
}

impl IddParams {
    /// Typical values for a 4 Gb x8 DDR3-1600 device (Micron datasheet
    /// class), the device the paper's Table 1 implies.
    pub fn ddr3_4gb_x8() -> Self {
        Self {
            idd0_ma: 75.0,
            idd2n_ma: 32.0,
            idd3n_ma: 38.0,
            idd4r_ma: 157.0,
            idd4w_ma: 118.0,
            idd5b_ma: 235.0,
            vdd: 1.5,
            devices_per_rank: 8,
        }
    }
}

impl Default for IddParams {
    fn default() -> Self {
        Self::ddr3_4gb_x8()
    }
}

/// Energy breakdown in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Standby energy (precharged + active) over the whole run.
    pub background_pj: f64,
    /// Activate/precharge pair energy.
    pub activate_pj: f64,
    /// Read burst energy.
    pub read_pj: f64,
    /// Write burst energy.
    pub write_pj: f64,
    /// Refresh energy.
    pub refresh_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.background_pj + self.activate_pj + self.read_pj + self.write_pj + self.refresh_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }
}

/// The energy model: IDD parameters bound to a DRAM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    idd: IddParams,
    cfg: DramConfig,
    /// Precharge-power-down estimation: command-free rank gaps longer
    /// than this many cycles are billed at `IDD2P` instead of `IDD2N`
    /// (minus a fixed entry/exit overhead). `None` disables it.
    power_down_after: Option<u64>,
    /// Precharge power-down current in mA (IDD2P).
    idd2p_ma: f64,
}

impl EnergyModel {
    /// Creates the model with explicit IDD parameters.
    pub fn new(idd: IddParams, cfg: DramConfig) -> Self {
        Self {
            idd,
            cfg,
            power_down_after: None,
            idd2p_ma: 12.0,
        }
    }

    /// Enables precharge-power-down estimation: any rank-idle gap longer
    /// than `threshold_cycles` is billed at the power-down current, minus
    /// a fixed `tXP`-style wake overhead. This post-processes the command
    /// log the way fast DRAM power estimators do, without changing the
    /// timing model.
    pub fn with_power_down(mut self, threshold_cycles: u64) -> Self {
        assert!(threshold_cycles > 0, "threshold must be non-zero");
        self.power_down_after = Some(threshold_cycles);
        self
    }

    /// The standard model for the paper's configuration.
    pub fn ddr3_4gb_x8(cfg: DramConfig) -> Self {
        Self::new(IddParams::ddr3_4gb_x8(), cfg)
    }

    /// The IDD parameters in use.
    pub fn idd(&self) -> &IddParams {
        &self.idd
    }

    /// Computes the energy of a run of `total_cycles` bus cycles whose
    /// command log is `log` (as recorded by [`dram::DramDevice`]).
    ///
    /// Auto-precharging reads/writes are accounted as closing their bank
    /// at issue time — a sub-`tRTP` approximation that affects only the
    /// standby-state split.
    pub fn energy(&self, log: &[CommandRecord], total_cycles: u64) -> EnergyBreakdown {
        let t = &self.cfg.timing;
        let tck = t.tck_ns;
        let scale = self.idd.vdd * f64::from(self.idd.devices_per_rank);
        // mA × ns = pC; × V = pJ (scaled by ganged devices).
        let mut out = EnergyBreakdown::default();

        // Per-command charge packets.
        let e_actpre = (self.idd.idd0_ma * f64::from(t.trc)
            - (self.idd.idd3n_ma * f64::from(t.tras) + self.idd.idd2n_ma * f64::from(t.trp)))
            * tck
            * scale;
        let e_rd = (self.idd.idd4r_ma - self.idd.idd3n_ma) * f64::from(t.tbl) * tck * scale;
        let e_wr = (self.idd.idd4w_ma - self.idd.idd3n_ma) * f64::from(t.tbl) * tck * scale;
        // Per-bank refresh (REFpb) burns IDD5B for only tRFCpb and covers
        // one bank: charge each REF record its actual lockout window.
        let ref_lockout = match self.cfg.refresh {
            dram::family::RefreshGranularity::AllBank => t.trfc,
            dram::family::RefreshGranularity::PerBank => t.trfcpb,
        };
        let e_ref = (self.idd.idd5b_ma - self.idd.idd2n_ma) * f64::from(ref_lockout) * tck * scale;

        // Background: reconstruct per-rank open-bank occupancy over time.
        // Ranks are identified by (channel, rank) pairs found in the log;
        // idle ranks contribute IDD2N for the whole run.
        let ranks = u64::from(self.cfg.org.channels) * u64::from(self.cfg.org.ranks);
        let mut active_cycles = 0u64; // Σ per-rank cycles with ≥1 open bank
        {
            use std::collections::HashMap;
            let mut open: HashMap<(u8, u8), (u64, i32, u64)> = HashMap::new();
            // (last_event_cycle, open_banks, active_cycles_accumulated)
            for rec in log {
                let entry = open.entry((rec.channel, rec.rank)).or_insert((0, 0, 0));
                let (last, banks, acc) = *entry;
                let add = if banks > 0 { rec.at - last } else { 0 };
                let banks = match rec.kind {
                    CommandKind::Act => banks + 1,
                    CommandKind::Pre | CommandKind::RdA | CommandKind::WrA => (banks - 1).max(0),
                    CommandKind::PreAll => 0,
                    _ => banks,
                };
                *entry = (rec.at, banks, acc + add);
            }
            for (_, (last, banks, acc)) in open {
                active_cycles += acc;
                if banks > 0 {
                    active_cycles += total_cycles.saturating_sub(last);
                }
            }
        }
        let total_rank_cycles = ranks * total_cycles;
        let precharged_cycles = total_rank_cycles.saturating_sub(active_cycles);
        out.background_pj = (self.idd.idd3n_ma * active_cycles as f64
            + self.idd.idd2n_ma * precharged_cycles as f64)
            * tck
            * scale;

        for rec in log {
            match rec.kind {
                CommandKind::Act => out.activate_pj += e_actpre,
                CommandKind::Rd | CommandKind::RdA => out.read_pj += e_rd,
                CommandKind::Wr | CommandKind::WrA => out.write_pj += e_wr,
                CommandKind::Ref => out.refresh_pj += e_ref,
                CommandKind::Pre | CommandKind::PreAll => {}
            }
        }

        // Optional precharge power-down: re-bill long idle gaps.
        if let Some(threshold) = self.power_down_after {
            let saved_ma = self.idd.idd2n_ma - self.idd2p_ma;
            if saved_ma > 0.0 {
                let mut pd_cycles = 0u64;
                let wake_overhead = 10u64; // tXP-class entry/exit cost
                let mut last: std::collections::HashMap<(u8, u8), u64> =
                    std::collections::HashMap::new();
                for rec in log {
                    let prev = last.insert((rec.channel, rec.rank), rec.at);
                    let gap = rec.at - prev.unwrap_or(0);
                    if gap > threshold {
                        pd_cycles += gap - wake_overhead.min(gap);
                    }
                }
                for (_, at) in last {
                    let gap = total_cycles.saturating_sub(at);
                    if gap > threshold {
                        pd_cycles += gap - wake_overhead.min(gap);
                    }
                }
                // A rank never seen in the log idles the whole run.
                let seen = log
                    .iter()
                    .map(|r| (r.channel, r.rank))
                    .collect::<std::collections::HashSet<_>>()
                    .len() as u64;
                pd_cycles += ranks.saturating_sub(seen) * total_cycles;
                out.background_pj -= saved_ma * pd_cycles as f64 * tck * scale;
            }
        }
        out
    }

    /// Average power in milliwatts for a run of `total_cycles`.
    pub fn avg_power_mw(&self, log: &[CommandRecord], total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        let e = self.energy(log, total_cycles);
        // pJ / ns = mW.
        e.total_pj() / (total_cycles as f64 * self.cfg.timing.tck_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, kind: CommandKind) -> CommandRecord {
        CommandRecord {
            at,
            kind,
            channel: 0,
            rank: 0,
        }
    }

    fn model() -> EnergyModel {
        EnergyModel::ddr3_4gb_x8(DramConfig::ddr3_1600_paper())
    }

    #[test]
    fn idle_run_is_pure_precharged_standby() {
        let m = model();
        let e = m.energy(&[], 1_000_000);
        assert_eq!(e.activate_pj, 0.0);
        assert_eq!(e.refresh_pj, 0.0);
        // IDD2N × VDD × devices × time.
        let expect = 32.0 * 1.5 * 8.0 * 1_000_000.0 * 1.25;
        assert!((e.background_pj - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn commands_add_their_packets() {
        let m = model();
        let log = vec![
            rec(0, CommandKind::Act),
            rec(20, CommandKind::Rd),
            rec(40, CommandKind::Wr),
            rec(100, CommandKind::Pre),
            rec(200, CommandKind::Ref),
        ];
        let e = m.energy(&log, 1000);
        assert!(e.activate_pj > 0.0);
        assert!(e.read_pj > 0.0);
        assert!(e.write_pj > 0.0);
        assert!(e.refresh_pj > 0.0);
        assert!(e.read_pj > e.write_pj); // IDD4R > IDD4W
    }

    #[test]
    fn active_standby_costs_more_than_precharged() {
        let m = model();
        // Bank open for the whole run vs never open.
        let open = vec![rec(0, CommandKind::Act)];
        let e_open = m.energy(&open, 10_000);
        let e_idle = m.energy(&[], 10_000);
        assert!(e_open.background_pj > e_idle.background_pj);
    }

    #[test]
    fn auto_precharge_closes_bank_for_background() {
        let m = model();
        let a = vec![rec(0, CommandKind::Act), rec(100, CommandKind::RdA)];
        let b = vec![rec(0, CommandKind::Act), rec(100, CommandKind::Rd)];
        let ea = m.energy(&a, 10_000);
        let eb = m.energy(&b, 10_000);
        assert!(ea.background_pj < eb.background_pj);
    }

    #[test]
    fn longer_runs_cost_more_for_same_work() {
        // The Figure 8 mechanism: identical command stream, shorter run →
        // less total energy.
        let m = model();
        let log = vec![
            rec(0, CommandKind::Act),
            rec(20, CommandKind::Rd),
            rec(60, CommandKind::Pre),
        ];
        let short = m.energy(&log, 10_000).total_pj();
        let long = m.energy(&log, 20_000).total_pj();
        assert!(long > short);
    }

    #[test]
    fn power_down_reduces_idle_energy() {
        let base = model();
        let pd = model().with_power_down(1_000);
        // One command, then a long idle tail.
        let log = vec![rec(0, CommandKind::Act), rec(100, CommandKind::Pre)];
        let e_base = base.energy(&log, 1_000_000);
        let e_pd = pd.energy(&log, 1_000_000);
        assert!(e_pd.background_pj < e_base.background_pj);
        // Non-idle energies unchanged.
        assert_eq!(e_pd.activate_pj, e_base.activate_pj);
    }

    #[test]
    fn power_down_ignores_short_gaps() {
        let pd = model().with_power_down(1_000);
        let base = model();
        // Commands every 500 cycles: no gap exceeds the threshold, except
        // the tail — truncate the run right after the last command.
        let log: Vec<CommandRecord> = (0..10).map(|i| rec(i * 500, CommandKind::Act)).collect();
        let a = pd.energy(&log, 4_600);
        let b = base.energy(&log, 4_600);
        assert!((a.background_pj - b.background_pj).abs() < 1e-9);
    }

    #[test]
    fn avg_power_is_time_normalized() {
        let m = model();
        let p1 = m.avg_power_mw(&[], 1_000);
        let p2 = m.avg_power_mw(&[], 100_000);
        assert!((p1 - p2).abs() < 1e-9);
        // Idle power = IDD2N × VDD × devices = 32 mA × 1.5 V × 8 = 384 mW.
        assert!((p1 - 384.0).abs() < 1e-9);
    }
}
