//! Row-reuse-distance analysis: why ChargeCache helps some workloads and
//! not others.
//!
//! The paper attributes the gap between ChargeCache and LL-DRAM on mcf
//! and omnetpp to their high *row reuse distance*: so many distinct rows
//! are activated between two activations of the same row that the HCRAC
//! entry is evicted before it can hit. This example measures that
//! distance with one `sim::api` sweep and correlates it with the
//! measured hit rate.
//!
//! ```sh
//! cargo run --release --example row_reuse
//! ```

use chargecache::MechanismSpec;
use sim::api::Experiment;
use sim::ExpParams;
use traces::single_core_workloads;

fn main() {
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>12}",
        "workload", "median dist", "≤128 rows", "cold/beyond", "HCRAC hit"
    );
    let sweep = Experiment::new()
        .workloads(single_core_workloads())
        .mechanism(MechanismSpec::chargecache())
        .params(ExpParams::bench())
        .run()
        .expect("paper configuration is valid");
    let mut rows = Vec::new();
    for cell in &sweep.cells {
        let r = cell.result();
        if r.reuse.activations < 100 {
            continue; // cache-resident workloads have nothing to measure
        }
        rows.push((
            cell.subject.clone(),
            r.reuse.median_bound(),
            r.reuse.fraction_within(128),
            r.reuse.cold_or_beyond as f64 / r.reuse.activations as f64,
            r.hcrac_hit_rate().unwrap_or(0.0),
        ));
    }
    // Sort by reuse locality: highest ≤128 fraction first.
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    for (name, med, within, cold, hit) in &rows {
        println!(
            "{:<12} {:>12} {:>13.1}% {:>13.1}% {:>11.1}%",
            name,
            med.map(|m| m.to_string()).unwrap_or_else(|| "-".into()),
            within * 100.0,
            cold * 100.0,
            hit * 100.0
        );
    }

    println!();
    println!("reading: the 128-entry HCRAC can only hit activations whose row reuse");
    println!("distance is within its reach; workloads at the bottom (high distance,");
    println!("mostly cold) are exactly the ones where ChargeCache trails LL-DRAM.");
}
