//! Row-Level Temporal Locality profiler: measure RLTL for any named
//! workload (or all of them) and show why ChargeCache's caching duration
//! can be so short.
//!
//! ```sh
//! cargo run --release --example rltl_profile            # all workloads
//! cargo run --release --example rltl_profile -- mcf     # one workload
//! ```

use chargecache::{ChargeCacheConfig, MechanismKind};
use sim::exp::{run_single_core, ExpParams};
use traces::{single_core_workloads, workload, WorkloadSpec};

fn profile(spec: &WorkloadSpec, params: &ExpParams) {
    let r = run_single_core(
        spec,
        MechanismKind::Baseline,
        &ChargeCacheConfig::paper(),
        params,
    );
    print_profile(spec.name, &r);
}

fn print_profile(name: &str, r: &sim::RunResult) {
    print!("{:<12} activations={:<8}", name, r.rltl.activations);
    for (ms, f) in r.rltl.intervals_ms.iter().zip(&r.rltl.rltl_fraction) {
        print!(" ≤{ms}ms:{:>5.1}%", f * 100.0);
    }
    println!(
        " | ≤8ms-after-REF: {:.1}%",
        r.rltl.refresh_8ms_fraction * 100.0
    );
}

fn main() {
    let params = ExpParams::bench();
    let args: Vec<String> = std::env::args().skip(1).collect();

    println!("cumulative fraction of row activations occurring within t of the row's");
    println!("previous precharge (t-RLTL, paper Section 3):\n");

    if let Some(name) = args.first() {
        match workload(name) {
            Some(spec) => profile(&spec, &params),
            None => {
                eprintln!("unknown workload {name:?}; available:");
                for w in single_core_workloads() {
                    eprintln!("  {}", w.name);
                }
                std::process::exit(1);
            }
        }
    } else {
        // Simulate every workload in parallel, then print in order.
        use sim::exp::{default_threads, par_map};
        let runs = par_map(single_core_workloads(), default_threads(), |spec| {
            (
                spec.name,
                run_single_core(
                    &spec,
                    MechanismKind::Baseline,
                    &ChargeCacheConfig::paper(),
                    &params,
                ),
            )
        });
        for (name, r) in runs {
            print_profile(name, &r);
        }
    }

    println!("\nreading: a high fraction at small t means rows are re-activated while");
    println!("still highly charged — each such activation can use reduced tRCD/tRAS.");
}
