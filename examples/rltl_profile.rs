//! Row-Level Temporal Locality profiler: measure RLTL for any named
//! workload (or all of them) and show why ChargeCache's caching duration
//! can be so short. One `sim::api` sweep over the requested workloads.
//!
//! ```sh
//! cargo run --release --example rltl_profile            # all workloads
//! cargo run --release --example rltl_profile -- mcf     # one workload
//! ```

use chargecache::MechanismSpec;
use sim::api::Experiment;
use sim::ExpParams;
use traces::{single_core_workloads, workload, WorkloadSpec};

fn profile_all(specs: Vec<WorkloadSpec>, params: ExpParams) {
    let sweep = Experiment::new()
        .workloads(specs)
        .mechanism(MechanismSpec::baseline())
        .params(params)
        .run()
        .expect("paper configuration is valid");
    for cell in &sweep.cells {
        print_profile(&cell.subject, cell.result());
    }
}

fn print_profile(name: &str, r: &sim::RunResult) {
    print!("{:<12} activations={:<8}", name, r.rltl.activations);
    for (ms, f) in r.rltl.intervals_ms.iter().zip(&r.rltl.rltl_fraction) {
        print!(" ≤{ms}ms:{:>5.1}%", f * 100.0);
    }
    println!(
        " | ≤8ms-after-REF: {:.1}%",
        r.rltl.refresh_8ms_fraction * 100.0
    );
}

fn main() {
    let params = ExpParams::bench();
    let args: Vec<String> = std::env::args().skip(1).collect();

    println!("cumulative fraction of row activations occurring within t of the row's");
    println!("previous precharge (t-RLTL, paper Section 3):\n");

    if let Some(name) = args.first() {
        match workload(name) {
            Some(spec) => profile_all(vec![spec], params),
            None => {
                eprintln!("unknown workload {name:?}; available:");
                for w in single_core_workloads() {
                    eprintln!("  {}", w.name);
                }
                std::process::exit(1);
            }
        }
    } else {
        // One sweep simulates every workload in parallel, then prints in
        // order.
        profile_all(single_core_workloads(), params);
    }

    println!("\nreading: a high fraction at small t means rows are re-activated while");
    println!("still highly charged — each such activation can use reduced tRCD/tRAS.");
}
