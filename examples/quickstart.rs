//! Quickstart: run one workload with and without ChargeCache and print
//! the headline effect.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chargecache::{ChargeCacheConfig, MechanismKind};
use sim::exp::{run_single_core, ExpParams};
use traces::workload;

fn main() {
    // A memory-intensive, bank-conflict-heavy workload (two interleaved
    // streams, like STREAM's copy kernel).
    let spec = workload("STREAMcopy").expect("paper workload");
    let params = ExpParams::bench();
    let cc_cfg = ChargeCacheConfig::paper();

    println!("workload: {} ({:?})", spec.name, spec.pattern);
    println!("system: 1 core, 4 MB LLC, DDR3-1600, FR-FCFS, open-row\n");

    let baseline = run_single_core(&spec, MechanismKind::Baseline, &cc_cfg, &params);
    let chargecache = run_single_core(&spec, MechanismKind::ChargeCache, &cc_cfg, &params);

    println!("baseline IPC:     {:.4}", baseline.ipc(0));
    println!("ChargeCache IPC:  {:.4}", chargecache.ipc(0));
    println!(
        "speedup:          {:+.2}%",
        (chargecache.ipc(0) / baseline.ipc(0) - 1.0) * 100.0
    );
    println!();
    println!(
        "HCRAC hit rate:   {:.1}%  (fraction of activations served with reduced tRCD/tRAS)",
        chargecache.hcrac_hit_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "0.125ms-RLTL:     {:.1}%  (the row locality ChargeCache exploits)",
        baseline.rltl.rltl_fraction[0] * 100.0
    );
    println!(
        "DRAM energy:      {:.4} mJ -> {:.4} mJ ({:+.2}%)",
        baseline.energy.total_mj(),
        chargecache.energy.total_mj(),
        (chargecache.energy.total_mj() / baseline.energy.total_mj() - 1.0) * 100.0
    );
}
