//! Quickstart: run one workload with and without ChargeCache and print
//! the headline effect, declared through the `sim::api` experiment
//! builder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chargecache::MechanismSpec;
use sim::api::{Experiment, Metric};
use sim::ExpParams;
use traces::workload;

fn main() {
    // A memory-intensive, bank-conflict-heavy workload (two interleaved
    // streams, like STREAM's copy kernel).
    let spec = workload("STREAMcopy").expect("paper workload");

    println!("workload: {} ({:?})", spec.name, spec.pattern);
    println!("system: 1 core, 4 MB LLC, DDR3-1600, FR-FCFS, open-row\n");

    // One declarative sweep: {workload} × {baseline, ChargeCache}.
    let sweep = Experiment::new()
        .workload(spec.clone())
        .mechanisms(&[MechanismSpec::baseline(), MechanismSpec::chargecache()])
        .params(ExpParams::bench())
        .run()
        .expect("paper configuration is valid");

    let baseline = sweep
        .cell(spec.name, "baseline", "paper")
        .expect("baseline cell");
    let chargecache = sweep
        .cell(spec.name, "chargecache", "paper")
        .expect("ChargeCache cell");

    println!("baseline IPC:     {:.4}", baseline.metric(Metric::Ipc));
    println!("ChargeCache IPC:  {:.4}", chargecache.metric(Metric::Ipc));
    println!(
        "speedup:          {:+.2}%",
        sweep.speedup(chargecache, baseline) * 100.0
    );
    println!();
    println!(
        "HCRAC hit rate:   {:.1}%  (fraction of activations served with reduced tRCD/tRAS)",
        chargecache.result().hcrac_hit_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "0.125ms-RLTL:     {:.1}%  (the row locality ChargeCache exploits)",
        baseline.metric(Metric::RltlFraction(0)) * 100.0
    );
    println!(
        "DRAM energy:      {:.4} mJ -> {:.4} mJ ({:+.2}%)",
        baseline.metric(Metric::EnergyMj),
        chargecache.metric(Metric::EnergyMj),
        (chargecache.metric(Metric::EnergyMj) / baseline.metric(Metric::EnergyMj) - 1.0) * 100.0
    );
}
