//! Device-family sensitivity of row-access-locality caching: one
//! workload swept across the built-in DRAM families (DDR3, DDR4 with
//! bank groups, LPDDR4X with per-bank refresh, an HBM2-style stack) for
//! cc/ccnuat/ll, printing the speedup-vs-family curve and emitting the
//! full sweep as a `chargecache-sweep/v5` JSON document (the schema
//! records the family axis since v5).
//!
//! ```sh
//! cargo run --release --example family_sensitivity -- mcf
//! cargo run --release --example family_sensitivity -- mcf --json > sweep.json
//! ```

use chargecache::MechanismSpec;
use dram::FamilySpec;
use sim::api::Experiment;
use sim::ExpParams;
use traces::workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "mcf".into());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    });

    let families: Vec<FamilySpec> = ["ddr3", "ddr4", "lpddr4x", "hbm2"]
        .iter()
        .map(|f| f.parse().expect("built-in family"))
        .collect();
    let sweep = Experiment::new()
        .workload(spec.clone())
        .families(families.clone())
        .mechanisms(&[
            MechanismSpec::baseline(),
            MechanismSpec::chargecache(),
            MechanismSpec::cc_nuat(),
            MechanismSpec::lldram(),
        ])
        .params(ExpParams::bench())
        .run()
        .expect("built-in families are valid");

    if json {
        println!("{}", sweep.to_json());
        return;
    }

    println!(
        "workload {} across {} device families (each family brings its own \
         geometry, default bin, and refresh scope)\n",
        spec.name,
        sweep.families.len()
    );
    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "family", "default bin", "base IPC", "cc", "ccnuat", "ll"
    );
    for f in &families {
        let family = f.to_string();
        let base = sweep
            .cell_in(spec.name, &family, "baseline", "paper")
            .expect("baseline cell");
        let speedup = |mech: &str| {
            let c = sweep
                .cell_in(spec.name, &family, mech, "paper")
                .expect("mechanism cell");
            format!(
                "{:+.2}%",
                (c.result().ipc(0) / base.result().ipc(0).max(1e-9) - 1.0) * 100.0
            )
        };
        let params = dram::family::resolve(f).expect("built-in family resolves");
        println!(
            "{:<10} {:>14} {:>10.4} {:>10} {:>10} {:>10}",
            family,
            params.default_timing_spec().to_string(),
            base.result().ipc(0),
            speedup("chargecache"),
            speedup("cc-nuat"),
            speedup("lldram")
        );
    }
}
