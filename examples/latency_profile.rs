//! Memory-latency distribution: where ChargeCache's cycles come from.
//!
//! Prints the read-latency histogram (enqueue → data, in DRAM bus cycles)
//! under baseline and ChargeCache, plus the mean and tail quantiles. The
//! mechanism shaves the activation component of row-miss latency, which
//! shows up as mass shifting toward the lower buckets.
//!
//! ```sh
//! cargo run --release --example latency_profile -- milc
//! ```

use bitline::derive::CycleQuantized;
use chargecache::MechanismSpec;
use sim::api::Experiment;
use sim::ExpParams;
use traces::workload;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "milc".into());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    });
    let sweep = Experiment::new()
        .workload(spec.clone())
        .mechanisms(&[MechanismSpec::baseline(), MechanismSpec::chargecache()])
        .params(ExpParams::bench())
        .run()
        .expect("paper configuration is valid");
    let base = sweep
        .cell(spec.name, "baseline", "paper")
        .expect("baseline cell")
        .result();
    let ccr = sweep
        .cell(spec.name, "chargecache", "paper")
        .expect("ChargeCache cell")
        .result();

    println!(
        "workload {} — read latency (bus cycles, enqueue → data)\n",
        spec.name
    );
    println!(
        "{:>12} {:>14} {:>14}",
        "≤ cycles", "baseline", "ChargeCache"
    );
    for i in 3..12 {
        let bound = 1u64 << i;
        let b = base.ctrl.read_latency_hist[i];
        let c = ccr.ctrl.read_latency_hist[i];
        if b == 0 && c == 0 {
            continue;
        }
        println!("{bound:>12} {b:>14} {c:>14}");
    }
    println!();
    println!(
        "mean:   {:>8.1} -> {:>8.1} bus cycles",
        base.ctrl.avg_read_latency(),
        ccr.ctrl.avg_read_latency()
    );
    for q in [0.5, 0.9, 0.99] {
        println!(
            "p{:<5} {:>8} -> {:>8} (bucket bound)",
            (q * 100.0) as u32,
            base.ctrl.read_latency_quantile(q).unwrap_or(0),
            ccr.ctrl.read_latency_quantile(q).unwrap_or(0)
        );
    }
    let tck = sim::SystemConfig::paper_single_core(MechanismSpec::chargecache())
        .dram
        .timing
        .tck_ns;
    let red = CycleQuantized::for_duration_ms(1.0, tck);
    println!(
        "\nHCRAC hit rate: {:.1}% — each hit removes up to {} bus cycles of tRCD",
        ccr.hcrac_hit_rate().unwrap_or(0.0) * 100.0,
        red.trcd_reduction
    );
}
