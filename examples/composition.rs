//! Mechanism composition (paper Sections 7.1 and 8): stack ChargeCache on
//! top of TL-DRAM-style segmentation or AL-DRAM-style temperature scaling
//! using the `BestOf` combinator, on a custom-built memory system.
//!
//! This example deliberately stays *below* the `sim::api` experiment
//! layer: it drives a bare [`MemorySystem`] with hand-built mechanism
//! compositions (registered specs would be the `sim::api` route; see
//! the `plugin_mechanism` example for that).
//! Everything that runs full-system sweeps lives on `sim::api` — see the
//! other examples.
//!
//! ```sh
//! cargo run --release --example composition
//! ```

use chargecache::{AlDram, BestOf, ChargeCache, ChargeCacheConfig, LatencyMechanism, TlDram};
use dram::DramConfig;
use memctrl::{AccessKind, CtrlConfig, MemRequest, MemorySystem};

/// Drives a bank-conflict-heavy request stream and reports how long the
/// controller takes to finish it.
fn run(label: &str, mech: Box<dyn LatencyMechanism>) -> u64 {
    let dram_cfg = DramConfig::ddr3_1600_paper();
    let row_stride = dram_cfg.org.row_bytes() * u64::from(dram_cfg.org.banks);
    let mut mem = MemorySystem::new(dram_cfg, CtrlConfig::default(), vec![mech]);

    let mut now = 0u64;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let total = 2_000u64;
    while completed < total {
        // Two rows of the same bank ping-pong, plus a sprinkle of far rows.
        if submitted < total {
            let row = match submitted % 4 {
                0 | 2 => submitted % 2,
                1 => 1,
                _ => 64 + (submitted / 8) % 32,
            };
            let addr = row * row_stride + (submitted % 64) * 64;
            if mem
                .try_enqueue(
                    MemRequest {
                        addr,
                        kind: AccessKind::Read,
                        core: 0,
                    },
                    now,
                )
                .is_some()
            {
                submitted += 1;
            }
        }
        completed += mem.tick(now).len() as u64;
        now += 1;
    }
    println!("{label:<36} finished in {now:>7} bus cycles");
    now
}

fn main() {
    let t = dram::TimingParams::ddr3_1600();
    let cc_cfg = ChargeCacheConfig::paper();

    println!("servicing the same 2000-read conflict-heavy stream:\n");
    let base = run("baseline", Box::new(chargecache::Baseline::new(&t)));
    let cc = run(
        "ChargeCache",
        Box::new(ChargeCache::new(cc_cfg.clone(), &t, 1)),
    );
    let tl = run("TL-DRAM (near segment only)", Box::new(TlDram::typical(&t)));
    let cc_tl = run(
        "ChargeCache + TL-DRAM",
        Box::new(BestOf::new(
            Box::new(ChargeCache::new(cc_cfg.clone(), &t, 1)),
            Box::new(TlDram::typical(&t)),
        )),
    );
    let cc_al = run(
        "ChargeCache + AL-DRAM @ 45°C",
        Box::new(BestOf::new(
            Box::new(ChargeCache::new(cc_cfg, &t, 1)),
            Box::new(AlDram::new(45.0, &t)),
        )),
    );

    println!();
    println!("speedup over baseline:");
    for (label, cycles) in [
        ("ChargeCache", cc),
        ("TL-DRAM", tl),
        ("ChargeCache + TL-DRAM", cc_tl),
        ("ChargeCache + AL-DRAM @ 45°C", cc_al),
    ] {
        println!(
            "  {label:<30} {:+.2}%",
            (base as f64 / cycles as f64 - 1.0) * 100.0
        );
    }
    println!("\ncomposition never hurts: BestOf applies whichever mechanism");
    println!("offers the faster (independently safe) timing per activation.");
}
