//! Plugin mechanisms end-to-end: run the paper's ChargeCache next to the
//! two mechanisms that live *outside* `crates/core` — the `perfect-cc`
//! oracle and the refresh-fed `refresh-cc` — plus a custom mechanism
//! defined right here in the example, all through one `sim::api` sweep.
//!
//! This is the openness proof of the mechanism plugin API: registering a
//! [`chargecache::MechanismFactory`] is the *only* integration step; the
//! spec then works in `SystemConfig`, sweeps, JSON output and
//! `cc-sim --mechanism` exactly like a built-in.
//!
//! ```sh
//! cargo run --release --example plugin_mechanism
//! ```

use std::sync::Arc;

use chargecache_repro::mechs::register_extended_mechanisms;
use chargecache_repro::prelude::*;
use dram::{ActTimings, BusCycle, TimingParams};
use sim::api::Experiment;
use traces::workload;

/// A deliberately simple custom mechanism: reduced timings for every
/// activation of an even-numbered row (a stand-in for any row-class
/// heuristic a user might study).
struct EvenRows {
    base: ActTimings,
    reduced: ActTimings,
    activates: u64,
    reduced_activates: u64,
}

impl LatencyMechanism for EvenRows {
    fn on_activate(&mut self, _: BusCycle, _: usize, key: RowKey, _: BusCycle) -> ActTimings {
        self.activates += 1;
        if (key.raw() & 1) == 0 {
            self.reduced_activates += 1;
            self.reduced
        } else {
            self.base
        }
    }

    fn on_precharge(&mut self, _: BusCycle, _: usize, _: RowKey) {}

    fn report_stats(&self, out: &mut dyn StatSink) {
        out.counter(chargecache::C_ACTIVATES, self.activates);
        out.counter(chargecache::C_REDUCED, self.reduced_activates);
    }

    fn name(&self) -> &str {
        "even-rows"
    }
}

struct EvenRowsFactory;

impl MechanismFactory for EvenRowsFactory {
    fn name(&self) -> &str {
        "even-rows"
    }
    fn describe(&self) -> &str {
        "demo: reduced timings for even-numbered rows"
    }
    fn validate(&self, spec: &MechanismSpec) -> Result<(), String> {
        spec.ensure_known_keys(&[])
    }
    fn build(
        &self,
        spec: &MechanismSpec,
        ctx: &chargecache::MechanismContext,
    ) -> Result<Box<dyn LatencyMechanism>, String> {
        self.validate(spec)?;
        let timing: &TimingParams = ctx.timing;
        Ok(Box::new(EvenRows {
            base: timing.act_timings(),
            reduced: timing.act_timings().reduced_by(4, 8),
            activates: 0,
            reduced_activates: 0,
        }))
    }
}

fn main() {
    // One registration call each — no `crates/core` edit anywhere.
    register_extended_mechanisms();
    registry::register_mechanism(Arc::new(EvenRowsFactory));

    let spec = workload("STREAMcopy").expect("paper workload");
    let mechanisms: Vec<MechanismSpec> = [
        "baseline",
        "chargecache",
        "refresh-cc",
        "perfect-cc",
        "lldram",
        "even-rows",
    ]
    .iter()
    .map(|m| m.parse().expect("registered spec"))
    .collect();

    let sweep = Experiment::new()
        .workload(spec.clone())
        .mechanisms(&mechanisms)
        .params(ExpParams::bench())
        .run()
        .expect("all mechanisms registered");

    println!(
        "workload {} — built-ins and plugins through one sweep\n",
        spec.name
    );
    println!(
        "{:<24} {:>8} {:>10} {:>12}",
        "mechanism", "IPC", "speedup", "reduced ACTs"
    );
    let base_ipc = sweep.cells[0].result().ipc(0);
    for cell in &sweep.cells {
        let r = cell.result();
        println!(
            "{:<24} {:>8.4} {:>+9.2}% {:>11.1}%",
            cell.mechanism.label(),
            r.ipc(0),
            (r.ipc(0) / base_ipc - 1.0) * 100.0,
            r.mech.reduced_fraction() * 100.0
        );
    }

    println!("\nordering checks the plugin semantics:");
    println!("  chargecache ≤ refresh-cc-ish ≤ perfect-cc ≤ lldram (more rows fast);");
    println!("  perfect-cc < lldram separates charge reuse from raw device speed.");

    // The JSON output carries plugin specs like any built-in.
    let doc = sim::json::parse_sweep(&sweep.to_json()).expect("v2 JSON");
    assert!(doc.mechanisms.iter().any(|m| m == "perfect-cc"));
    println!("\nv2 JSON round-trip OK ({} cells)", doc.cells.len());
}
