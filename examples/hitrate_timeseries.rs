//! Streaming-probe time series: HCRAC hit rate and IPC over time from
//! **one** simulation.
//!
//! A [`sim::api::Probe`] observes the running [`sim::System`] at a fixed
//! cycle interval, so a whole time-series figure (hit-rate ramp as the
//! HCRAC warms, IPC settling after the cold start) costs a single run —
//! instead of one full simulation per sample point, the pattern the
//! duration/interval figures would otherwise need.
//!
//! ```sh
//! cargo run --release --example hitrate_timeseries -- STREAMcopy
//! ```

use chargecache::MechanismSpec;
use sim::api::run_probed;
use sim::{ExpParams, System, SystemConfig};
use traces::workload;

/// One cumulative observation (mechanism stats + progress).
#[derive(Clone, Copy)]
struct Point {
    cycle: u64,
    retired: u64,
    activates: u64,
    reduced: u64,
}

fn observe(sys: &System) -> Point {
    let m = sys.memory().mech_report();
    Point {
        cycle: sys.now(),
        retired: sys.min_retired(),
        activates: m.activates(),
        reduced: m.reduced_activates(),
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "STREAMcopy".into());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    });
    let p = ExpParams::bench();
    let cfg = SystemConfig::paper_single_core(MechanismSpec::chargecache());
    // Roughly 8/IPC samples across the measured interval (a run takes
    // about insts/IPC cycles), at any scale.
    let interval = (p.insts_per_core / 8).max(1_000);

    let mut points: Vec<Point> = Vec::new();
    let mut probe = |sys: &System| points.push(observe(sys));
    let r = run_probed(cfg, std::slice::from_ref(&spec), &p, interval, &mut probe)
        .expect("paper configuration is valid");

    println!(
        "workload {} — ChargeCache warm-up, sampled every {} cycles of one run\n",
        spec.name, interval
    );
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12}",
        "cycle", "Δretired", "window IPC", "window hit", "cumul. hit"
    );
    for w in points.windows(2) {
        let (a, b) = (w[0], w[1]);
        let cycles = (b.cycle - a.cycle).max(1);
        let acts = b.activates - a.activates;
        let window_hit = if acts == 0 {
            f64::NAN
        } else {
            (b.reduced - a.reduced) as f64 / acts as f64
        };
        let cumul_hit = if b.activates == 0 {
            f64::NAN
        } else {
            b.reduced as f64 / b.activates as f64
        };
        println!(
            "{:>12} {:>10} {:>12.4} {:>11.1}% {:>11.1}%",
            b.cycle,
            b.retired - a.retired,
            (b.retired - a.retired) as f64 / cycles as f64,
            window_hit * 100.0,
            cumul_hit * 100.0
        );
    }
    println!(
        "\nwhole run: IPC {:.4}, HCRAC hit rate {:.1}% — identical to an",
        r.ipc(0),
        r.hcrac_hit_rate().unwrap_or(0.0) * 100.0
    );
    println!("unprobed run (probes observe; they never perturb — see tests/api.rs).");
}
