//! HCRAC design-space exploration: hit rate and speedup versus capacity
//! and associativity for one workload — the per-design view behind the
//! paper's Figures 9 and 10, declared as one `sim::api` variant grid.
//!
//! ```sh
//! cargo run --release --example capacity_sweep -- tpch17
//! ```

use chargecache::{MechanismSpec, ParamValue};
use sim::api::{Experiment, Variant};
use sim::ExpParams;
use traces::workload;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tpch17".into());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    });
    let params = ExpParams::bench();

    let baseline = Experiment::new()
        .workload(spec.clone())
        .mechanism(MechanismSpec::baseline())
        .params(params)
        .run()
        .expect("paper configuration is valid");
    let base_ipc = baseline.cells[0].result().ipc(0);
    println!(
        "workload {} — baseline IPC {:.4}, RMPKC {:.2}\n",
        spec.name,
        base_ipc,
        baseline.cells[0].result().rmpkc()
    );

    println!(
        "{:>8} {:>6} {:>10} {:>10}",
        "entries", "ways", "hit rate", "speedup"
    );
    let grid: Vec<(usize, usize)> = [32usize, 64, 128, 256, 512, 1024]
        .into_iter()
        .flat_map(|entries| [(entries, 2usize), (entries, 0usize)])
        .collect();
    let variants = grid.iter().map(|&(entries, ways)| {
        Variant::new(format!("{entries}w{ways}"), move |cfg| {
            cfg.mechanism
                .set("entries", ParamValue::Int(entries as i64));
            cfg.mechanism.set("ways", ParamValue::Int(ways as i64));
        })
    });
    let sweep = Experiment::new()
        .workload(spec.clone())
        .mechanism(MechanismSpec::chargecache())
        .variants(variants)
        .variant(Variant::new("unlimited", |cfg| {
            cfg.mechanism.set("unlimited", ParamValue::Bool(true));
            cfg.mechanism
                .set("invalidation", ParamValue::Str("exact".into()));
        }))
        .params(params)
        .run()
        .expect("paper configuration is valid");
    for ((entries, ways), cell) in grid.iter().zip(&sweep.cells) {
        println!(
            "{:>8} {:>6} {:>9.1}% {:>+9.2}%",
            entries,
            if *ways == 0 {
                "full".into()
            } else {
                ways.to_string()
            },
            cell.result().hcrac_hit_rate().unwrap_or(0.0) * 100.0,
            (cell.result().ipc(0) / base_ipc - 1.0) * 100.0
        );
    }

    let unlimited = sweep
        .cell(spec.name, "chargecache", "unlimited")
        .expect("unlimited cell");
    println!(
        "{:>8} {:>6} {:>9.1}% {:>+9.2}%",
        "∞",
        "-",
        unlimited.result().hcrac_hit_rate().unwrap_or(0.0) * 100.0,
        (unlimited.result().ipc(0) / base_ipc - 1.0) * 100.0
    );
}
