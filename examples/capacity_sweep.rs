//! HCRAC design-space exploration: hit rate and speedup versus capacity
//! and associativity for one workload — the per-design view behind the
//! paper's Figures 9 and 10.
//!
//! ```sh
//! cargo run --release --example capacity_sweep -- tpch17
//! ```

use chargecache::{ChargeCacheConfig, MechanismKind};
use sim::exp::{default_threads, par_map, run_single_core, ExpParams};
use traces::workload;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tpch17".into());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    });
    let params = ExpParams::bench();

    let baseline = run_single_core(
        &spec,
        MechanismKind::Baseline,
        &ChargeCacheConfig::paper(),
        &params,
    );
    let base_ipc = baseline.ipc(0);
    println!(
        "workload {} — baseline IPC {:.4}, RMPKC {:.2}\n",
        spec.name,
        base_ipc,
        baseline.rmpkc()
    );

    println!(
        "{:>8} {:>6} {:>10} {:>10}",
        "entries", "ways", "hit rate", "speedup"
    );
    let grid: Vec<(usize, usize)> = [32usize, 64, 128, 256, 512, 1024]
        .into_iter()
        .flat_map(|entries| [(entries, 2usize), (entries, 0usize)])
        .collect();
    let results = par_map(grid, default_threads(), |(entries, ways)| {
        let mut cfg = ChargeCacheConfig::with_entries(entries);
        cfg.ways = ways;
        let r = run_single_core(&spec, MechanismKind::ChargeCache, &cfg, &params);
        (entries, ways, r)
    });
    for (entries, ways, r) in results {
        println!(
            "{:>8} {:>6} {:>9.1}% {:>+9.2}%",
            entries,
            if ways == 0 {
                "full".into()
            } else {
                ways.to_string()
            },
            r.hcrac_hit_rate().unwrap_or(0.0) * 100.0,
            (r.ipc(0) / base_ipc - 1.0) * 100.0
        );
    }

    let unlimited = run_single_core(
        &spec,
        MechanismKind::ChargeCache,
        &ChargeCacheConfig::unlimited(),
        &params,
    );
    println!(
        "{:>8} {:>6} {:>9.1}% {:>+9.2}%",
        "∞",
        "-",
        unlimited.hcrac_hit_rate().unwrap_or(0.0) * 100.0,
        (unlimited.ipc(0) / base_ipc - 1.0) * 100.0
    );
}
