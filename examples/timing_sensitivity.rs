//! Latency sensitivity of row-access-locality caching: one workload
//! swept across the JEDEC DDR3 speed bins for cc/ccnuat/ll, printing the
//! speedup-vs-speed-bin curve and emitting the full sweep as a
//! `chargecache-sweep/v4` JSON document (the schema records the timing
//! axis since v3).
//!
//! ```sh
//! cargo run --release --example timing_sensitivity -- mcf
//! cargo run --release --example timing_sensitivity -- mcf --json > sweep.json
//! ```

use chargecache::MechanismSpec;
use dram::{SpeedBin, TimingSpec};
use sim::api::Experiment;
use sim::ExpParams;
use traces::workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "mcf".into());
    let spec = workload(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    });

    let sweep = Experiment::new()
        .workload(spec.clone())
        .timings(SpeedBin::DDR3.iter().map(|&b| TimingSpec::for_bin(b)))
        .mechanisms(&[
            MechanismSpec::baseline(),
            MechanismSpec::chargecache(),
            MechanismSpec::cc_nuat(),
            MechanismSpec::lldram(),
        ])
        .params(ExpParams::bench())
        .run()
        .expect("paper configuration is valid");

    if json {
        println!("{}", sweep.to_json());
        return;
    }

    println!(
        "workload {} across {} speed bins (reductions re-quantized per bin)\n",
        spec.name,
        sweep.timings.len()
    );
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "speed bin", "tRCD", "base IPC", "cc", "ccnuat", "ll"
    );
    for bin in SpeedBin::DDR3 {
        let timing = TimingSpec::for_bin(bin).to_string();
        let base = sweep
            .cell_at(spec.name, &timing, "baseline", "paper")
            .expect("baseline cell");
        let speedup = |mech: &str| {
            let c = sweep
                .cell_at(spec.name, &timing, mech, "paper")
                .expect("mechanism cell");
            format!(
                "{:+.2}%",
                (c.result().ipc(0) / base.result().ipc(0).max(1e-9) - 1.0) * 100.0
            )
        };
        println!(
            "{:<12} {:>6} {:>10.4} {:>10} {:>10} {:>10}",
            timing,
            bin.timing().trcd,
            base.result().ipc(0),
            speedup("chargecache"),
            speedup("cc-nuat"),
            speedup("lldram")
        );
    }
}
