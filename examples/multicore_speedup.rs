//! Eight-core weighted-speedup comparison: the paper's headline result.
//!
//! Runs one multiprogrammed mix under all five mechanisms and reports
//! weighted speedup versus the DDR3 baseline. One `sim::api` grid: the
//! alone-IPC denominators are requested declaratively and memoized per
//! workload.
//!
//! ```sh
//! cargo run --release --example multicore_speedup          # mix w1
//! cargo run --release --example multicore_speedup -- 7     # mix w7
//! ```

use chargecache::MechanismSpec;
use sim::api::Experiment;
use sim::ExpParams;
use traces::eight_core_mixes;

fn main() {
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mixes = eight_core_mixes();
    let mix = mixes
        .get(idx.saturating_sub(1))
        .unwrap_or_else(|| {
            eprintln!("mix index must be 1..={}", mixes.len());
            std::process::exit(1);
        })
        .clone();

    println!("mix {}:", mix.name);
    for (core, app) in mix.apps.iter().enumerate() {
        println!("  core {core}: {}", app.name);
    }
    println!();

    // Weighted speedup uses a common set of alone-IPC denominators
    // (baseline system), so ratios isolate the shared-run improvement.
    let sweep = Experiment::new()
        .mix(mix.clone())
        .mechanisms(&MechanismSpec::paper_all())
        .params(ExpParams::bench())
        .alone_ipcs(MechanismSpec::baseline())
        .run()
        .expect("paper configuration is valid");

    let mut ws_base = 0.0;
    println!(
        "{:<20} {:>16} {:>12}",
        "mechanism", "weighted speedup", "vs baseline"
    );
    for spec in MechanismSpec::paper_all() {
        let cell = sweep
            .cell(&mix.name, spec.name(), "paper")
            .expect("mechanism cell");
        let ws = sweep.weighted_speedup(cell).expect("alone runs computed");
        if spec.name() == "baseline" {
            ws_base = ws;
        }
        println!(
            "{:<20} {:>16.3} {:>11.2}%",
            spec.label(),
            ws,
            (ws / ws_base - 1.0) * 100.0
        );
    }
}
