//! Eight-core weighted-speedup comparison: the paper's headline result.
//!
//! Runs one multiprogrammed mix under all five mechanisms and reports
//! weighted speedup versus the DDR3 baseline.
//!
//! ```sh
//! cargo run --release --example multicore_speedup          # mix w1
//! cargo run --release --example multicore_speedup -- 7     # mix w7
//! ```

use chargecache::{ChargeCacheConfig, MechanismKind};
use sim::exp::{alone_ipc, default_threads, par_map, run_eight_core, ExpParams};
use sim::weighted_speedup;
use traces::eight_core_mixes;

fn main() {
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mixes = eight_core_mixes();
    let mix = mixes
        .get(idx.saturating_sub(1))
        .unwrap_or_else(|| {
            eprintln!("mix index must be 1..={}", mixes.len());
            std::process::exit(1);
        })
        .clone();

    let params = ExpParams::bench();
    let cc = ChargeCacheConfig::paper();

    println!("mix {}:", mix.name);
    for (core, app) in mix.apps.iter().enumerate() {
        println!("  core {core}: {}", app.name);
    }
    println!();

    // Weighted speedup uses a common set of alone-IPC denominators
    // (baseline system), so ratios isolate the shared-run improvement.
    let alone: Vec<f64> = par_map(mix.apps.clone(), default_threads(), |app| {
        alone_ipc(&app, MechanismKind::Baseline, &cc, &params).max(1e-9)
    });

    let mut ws_base = 0.0;
    println!(
        "{:<20} {:>16} {:>12}",
        "mechanism", "weighted speedup", "vs baseline"
    );
    for kind in MechanismKind::ALL {
        let shared = run_eight_core(&mix, kind, &cc, &params);
        let shared_ipc: Vec<f64> = (0..8).map(|c| shared.ipc(c)).collect();
        let ws = weighted_speedup(&shared_ipc, &alone);
        if kind == MechanismKind::Baseline {
            ws_base = ws;
        }
        println!(
            "{:<20} {:>16.3} {:>11.2}%",
            kind.label(),
            ws,
            (ws / ws_base - 1.0) * 100.0
        );
    }
}
